"""Frame semantics, trace -> frame fidelity, and the zero-copy /
bit-identity contract of the graph frames vs the in-core objects."""

import numpy as np
import pytest

from repro.core import build_graph, compiled_plan
from repro.core.graph import EdgeKind
from repro.metrics import Frame, edge_frame, node_frame, trace_frame
from repro.trace.events import EventKind


@pytest.fixture
def small():
    return Frame(
        {
            "rank": np.array([1, 0, 1, 0, 2], dtype=np.int64),
            "v": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            "n": np.array([1, 2, 3, 4, 5], dtype=np.int64),
        },
        meta={"origin": "test"},
    )


class TestFrame:
    def test_shape_and_introspection(self, small):
        assert len(small) == 5
        assert small.columns == ("rank", "v", "n")
        assert "v" in small
        assert "missing" not in small
        assert small.meta == {"origin": "test"}
        assert "5 rows" in repr(small)

    def test_getitem_is_a_view(self, small):
        col = small["v"]
        assert np.shares_memory(col, small["v"])
        with pytest.raises(KeyError, match="no column 'missing'"):
            small["missing"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"a": np.zeros(3), "b": np.zeros(4)})
        with pytest.raises(ValueError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_row(self, small):
        assert small.row(1) == {"rank": 0, "v": 20.0, "n": 2}

    def test_select_keeps_views(self, small):
        sub = small.select("v", "rank")
        assert sub.columns == ("v", "rank")
        assert np.shares_memory(sub["v"], small["v"])
        assert sub.meta == small.meta

    def test_with_columns(self, small):
        f = small.with_columns(double=small["v"] * 2)
        assert "double" in f
        assert np.array_equal(f["double"], small["v"] * 2)
        assert len(small.columns) == 3  # original untouched

    def test_filter_mask_and_callable(self, small):
        by_mask = small.filter(np.asarray(small["rank"]) == 1)
        by_call = small.filter(lambda f: f["rank"] == 1)
        assert np.array_equal(by_mask["v"], [10.0, 30.0])
        assert np.array_equal(by_call["v"], by_mask["v"])
        with pytest.raises(ValueError, match="mask"):
            small.filter(np.zeros(3, dtype=bool))
        with pytest.raises(ValueError, match="mask"):
            small.filter(small["v"])  # wrong dtype

    def test_sort_by_is_stable_and_multi_key(self, small):
        f = small.sort_by("rank", "n")
        assert np.array_equal(f["rank"], [0, 0, 1, 1, 2])
        assert np.array_equal(f["n"], [2, 4, 1, 3, 5])
        with pytest.raises(ValueError):
            small.sort_by()

    def test_groupby_aggregations(self, small):
        g = small.groupby("rank")
        assert np.array_equal(g.keys, [0, 1, 2])
        s = g.sum("v")
        assert np.array_equal(s["v"], [60.0, 40.0, 50.0])
        assert np.array_equal(g.max("v")["v"], [40.0, 30.0, 50.0])
        assert np.array_equal(g.min("v")["v"], [20.0, 10.0, 50.0])
        assert np.array_equal(g.count()["count"], [2, 2, 1])
        assert np.array_equal(g.mean("v")["v"], [30.0, 20.0, 50.0])

    def test_groupby_default_aggregates_all_other_columns(self, small):
        s = small.groupby("rank").sum()
        assert set(s.columns) == {"rank", "v", "n"}
        assert np.array_equal(s["n"], [6, 4, 5])

    def test_groupby_iteration(self, small):
        groups = dict(iter(small.groupby("rank")))
        assert set(groups) == {0, 1, 2}
        assert np.array_equal(groups[1]["v"], [10.0, 30.0])
        # sub-frame rows come back in original stream order
        assert np.array_equal(groups[0]["n"], [2, 4])

    def test_groupby_empty(self):
        f = Frame({"k": np.zeros(0, dtype=np.int64), "v": np.zeros(0)})
        g = f.groupby("k")
        assert len(g.keys) == 0
        assert len(g.sum("v")) == 0
        assert list(iter(g)) == []

    def test_to_dict(self, small):
        d = small.to_dict()
        assert set(d) == {"rank", "v", "n"}
        assert np.shares_memory(d["v"], small["v"])

    def test_to_pandas(self, small):
        pd = pytest.importorskip("pandas")
        df = small.to_pandas()
        assert isinstance(df, pd.DataFrame)
        assert list(df.columns) == ["rank", "v", "n"]
        assert df["v"].tolist() == [10.0, 20.0, 30.0, 40.0, 50.0]


class TestTraceFrame:
    def test_matches_load_all(self, ring_trace):
        frame = trace_frame(ring_trace)
        flat = [ev for evs in ring_trace.load_all() for ev in evs]
        assert len(frame) == len(flat)
        assert frame.meta["nprocs"] == ring_trace.nprocs
        assert frame.meta["program"] == ring_trace.meta(0).program
        for i, ev in enumerate(flat):
            row = frame.row(i)
            assert row["rank"] == ev.rank
            assert row["seq"] == ev.seq
            assert row["kind"] == int(ev.kind)
            assert row["t_start"] == ev.t_start
            assert row["t_end"] == ev.t_end
            assert row["peer"] == ev.peer
            assert row["tag"] == ev.tag
            assert row["nbytes"] == ev.nbytes
            assert row["duration"] == ev.t_end - ev.t_start

    def test_rank_major_ordering(self, stencil_trace):
        frame = trace_frame(stencil_trace)
        rank = frame["rank"]
        assert np.all(np.diff(rank) >= 0)

    def test_from_event_list(self, ring_trace):
        flat = [ev for evs in ring_trace.load_all() for ev in evs]
        frame = trace_frame(flat)
        assert frame.meta["nprocs"] == ring_trace.nprocs
        assert "program" not in frame.meta
        ref = trace_frame(ring_trace)
        for name in ref.columns:
            assert np.array_equal(frame[name], ref[name]), name

    def test_empty_list(self):
        frame = trace_frame([])
        assert len(frame) == 0
        assert "duration" in frame

    def test_scriptable_slicing(self, ring_trace):
        frame = trace_frame(ring_trace)
        sends = frame.filter(lambda f: f["kind"] == int(EventKind.SEND))
        assert len(sends) > 0
        per_rank = sends.groupby("rank").sum("nbytes")
        assert np.all(per_rank["nbytes"] > 0)


class TestGraphFrames:
    """Zero-copy views over the CompiledPlan columns, bit-identical to
    the in-core graph objects (the cross-engine identity)."""

    @pytest.fixture
    def build(self, ring_trace):
        return build_graph(ring_trace)

    def test_node_frame_zero_copy(self, build):
        plan = compiled_plan(build)
        nf = node_frame(build)
        assert len(nf) == plan.n_nodes
        for col, arr in (
            ("rank", plan.node_rank),
            ("seq", plan.node_seq),
            ("phase", plan.node_phase),
            ("kind", plan.node_kind),
            ("t_local", plan.node_t_local),
        ):
            assert np.shares_memory(nf[col], arr), col

    def test_edge_frame_zero_copy(self, build):
        plan = compiled_plan(build)
        ef = edge_frame(build)
        assert len(ef) == plan.n_edges
        for col, arr in (
            ("src", plan.edge_src),
            ("dst", plan.edge_dst),
            ("weight", plan.edge_weight),
            ("delta_kind", plan.edge_kind),
            ("is_local", plan.edge_is_local),
            ("nbytes", plan.edge_nbytes),
        ):
            assert np.shares_memory(ef[col], arr), col

    def test_node_columns_match_incore_objects(self, build):
        nf = node_frame(build)
        nodes = build.graph.nodes
        assert np.array_equal(nf["node_id"], np.arange(len(nodes)))
        assert np.array_equal(nf["rank"], [n.rank for n in nodes])
        assert np.array_equal(nf["seq"], [n.seq for n in nodes])
        assert np.array_equal(nf["phase"], [int(n.phase) for n in nodes])
        assert np.array_equal(nf["kind"], [int(n.kind) for n in nodes])
        assert np.array_equal(
            nf["t_local"], [n.t_local for n in nodes], equal_nan=True
        )

    def test_edge_columns_match_incore_objects(self, build):
        ef = edge_frame(build)
        edges = build.graph.edges
        assert np.array_equal(ef["src"], [e.src for e in edges])
        assert np.array_equal(ef["dst"], [e.dst for e in edges])
        assert np.array_equal(ef["is_local"], [e.kind == EdgeKind.LOCAL for e in edges])
        assert np.array_equal(ef["nbytes"], [e.delta.nbytes for e in edges])

    def test_accepts_plan_directly(self, build):
        plan = compiled_plan(build)
        assert np.array_equal(node_frame(plan)["rank"], node_frame(build)["rank"])
        assert node_frame(plan).meta["nprocs"] == plan.nprocs
