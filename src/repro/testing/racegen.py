"""Synthetic wildcard-matching scenarios for verification tests and CI.

The static verifier's acceptance scenarios need traces whose match-
nondeterminism verdict is *known by construction*.  Each generator here
is a tiny :mod:`repro.mpisim` program built around one wildcard receive
pattern on three ranks:

``race``
    Rank 0 posts two ``ANY_SOURCE`` receives; ranks 1 and 2 each send
    one message with the same tag but **different payload sizes**.
    Neither sender is ordered before the other, both receives accept
    either, and the swap is observable — ``repro-verify`` must flag
    MPG311 (match-order race) on the wildcard receives.

``deadlock``
    Rank 0 posts one ``ANY_SOURCE`` receive followed by a receive pinned
    to ``source=2``; ranks 1 and 2 each send one identical message.  If
    the wildcard stole rank 2's message, the pinned receive would have
    no sender left — ``repro-verify`` must flag MPG312 (deadlock
    potential).

``clean``
    Like ``race`` but the two payloads are identical: the
    nondeterminism is benign, so the verifier must report only MPG310
    (INFO) and the ``--fail-on warning`` gate must pass.

``python -m repro.testing.racegen`` writes one scenario as an on-disk
trace set (the CI ``verify`` job uses ``race`` to manufacture the
ambiguous-receive scenario that must make ``repro-verify`` exit
nonzero, and ``clean`` to prove the gate does not cry wolf).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterator, Sequence

from repro.mpisim import ANY_SOURCE, Compute, Op, RankInfo, Recv, Send, run_to_files
from repro.mpisim.runtime import RunResult

__all__ = ["SCENARIOS", "clean_program", "deadlock_program", "race_program", "write_scenario", "main"]

NPROCS = 3
_TAG = 5


def race_program(me: RankInfo) -> Iterator[Op]:
    """Two observably different senders race for two wildcard receives."""
    if me.rank == 0:
        yield Recv(source=ANY_SOURCE, tag=_TAG)
        yield Recv(source=ANY_SOURCE, tag=_TAG)
    elif me.rank == 1:
        yield Compute(1_000)
        yield Send(dest=0, nbytes=64, tag=_TAG)
    elif me.rank == 2:
        yield Compute(1_000)
        yield Send(dest=0, nbytes=4_096, tag=_TAG)


def deadlock_program(me: RankInfo) -> Iterator[Op]:
    """A wildcard receive can starve the pinned receive behind it."""
    if me.rank == 0:
        yield Recv(source=ANY_SOURCE, tag=_TAG)
        yield Recv(source=2, tag=_TAG)
    elif me.rank in (1, 2):
        yield Compute(1_000)
        yield Send(dest=0, nbytes=64, tag=_TAG)


def clean_program(me: RankInfo) -> Iterator[Op]:
    """Benign wildcard nondeterminism: every alternative is identical."""
    if me.rank == 0:
        yield Recv(source=ANY_SOURCE, tag=_TAG)
        yield Recv(source=ANY_SOURCE, tag=_TAG)
    elif me.rank in (1, 2):
        yield Compute(1_000)
        yield Send(dest=0, nbytes=64, tag=_TAG)


SCENARIOS = {
    "race": race_program,
    "deadlock": deadlock_program,
    "clean": clean_program,
}


def write_scenario(
    scenario: str, directory: str, stem: str, seed: int = 1, binary: bool = False
) -> RunResult:
    """Run one scenario and write its per-rank trace files."""
    try:
        program = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return run_to_files(
        program,
        directory,
        stem,
        nprocs=NPROCS,
        seed=seed,
        program_name=f"racegen-{scenario}",
        binary=binary,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.racegen",
        description="Write a wildcard-matching scenario as a trace set.",
    )
    parser.add_argument(
        "--scenario", required=True, choices=sorted(SCENARIOS), help="which fixture to generate"
    )
    parser.add_argument("--out", required=True, help="output trace directory")
    parser.add_argument("--stem", default="racegen", help="output trace stem")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--binary", action="store_true", help="write binary traces")
    args = parser.parse_args(argv)

    result = write_scenario(args.scenario, args.out, args.stem, seed=args.seed, binary=args.binary)
    print(
        f"{args.scenario} scenario: {NPROCS} ranks, "
        f"{result.events_processed} engine events -> {args.out}/{args.stem}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
