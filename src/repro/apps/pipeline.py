"""Wavefront pipeline: stage r receives from r-1, computes, forwards to r+1.

A software pipeline (LU-style wavefront or streaming filter chain).
Its steady state overlaps all stages, so a noise pulse on one stage
propagates downstream with a delay but is partially absorbed by pipeline
slack upstream — a middle ground between the token ring (fully
sensitive) and master/worker (mostly tolerant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Compute, Op, RankInfo, Recv, Send

__all__ = ["PipelineParams", "pipeline"]


@dataclass(frozen=True)
class PipelineParams:
    """Configuration of the wavefront pipeline.

    items:
        Work items streamed through the pipeline.
    item_bytes:
        Payload forwarded between stages.
    stage_cycles:
        Per-item work at each stage.
    tag:
        Message tag for inter-stage transfers.
    """

    items: int = 16
    item_bytes: int = 1024
    stage_cycles: float = 15_000.0
    tag: int = 5

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ValueError("items must be >= 1")
        if self.stage_cycles < 0:
            raise ValueError("stage_cycles must be >= 0")


def pipeline(params: PipelineParams = PipelineParams()):
    """Rank program factory: rank 0 produces, rank p-1 consumes."""

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        if p == 1:
            for _ in range(params.items):
                yield Compute(params.stage_cycles)
            return
        for _ in range(params.items):
            if me.rank > 0:
                yield Recv(source=me.rank - 1, tag=params.tag)
            yield Compute(params.stage_cycles)
            if me.rank < p - 1:
                yield Send(dest=me.rank + 1, nbytes=params.item_bytes, tag=params.tag)

    return program
