"""Tests for the buffered trace writers (§4 buffering behaviour)."""

import pytest

from repro.trace.events import EventKind, EventRecord, TraceMeta
from repro.trace.reader import TraceReader
from repro.trace.writer import TraceSetWriter, TraceWriter, rank_filename


def make_events(rank, n):
    return [
        EventRecord(rank=rank, seq=i, kind=EventKind.SEND, t_start=float(i), t_end=float(i) + 0.5)
        for i in range(n)
    ]


@pytest.fixture
def meta():
    return TraceMeta(rank=0, nprocs=1, program="t")


class TestTraceWriter:
    def test_buffer_flushes_when_full(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta, buffer_events=10)
        for e in make_events(0, 25):
            w.record(e)
        assert w.flush_count == 2  # two full buffers; 5 events still resident
        w.close()
        assert w.flush_count == 3

    def test_no_flush_below_buffer(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta, buffer_events=100)
        for e in make_events(0, 99):
            w.record(e)
        assert w.flush_count == 0  # memory resident, §4
        w.close()
        assert w.event_count == 99

    def test_round_trip_text_and_binary(self, tmp_path, meta):
        events = make_events(0, 57)
        for binary in (False, True):
            path = tmp_path / f"t{binary}.trace.{'bin' if binary else 'jsonl'}"
            with TraceWriter(path, meta, buffer_events=8, binary=binary) as w:
                w.record_all(events)
            reader = TraceReader(path)
            assert reader.meta == meta
            assert list(reader.events()) == events

    def test_rejects_wrong_rank(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta)
        with pytest.raises(ValueError, match="rank"):
            w.record(make_events(1, 1)[0])
        w.close()

    def test_rejects_out_of_order_seq(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta)
        events = make_events(0, 3)
        w.record(events[0])
        with pytest.raises(ValueError, match="out-of-order"):
            w.record(events[2])
        w.close()

    def test_rejects_after_close(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta)
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.record(make_events(0, 1)[0])

    def test_double_close_harmless(self, tmp_path, meta):
        w = TraceWriter(tmp_path / "t.trace.jsonl", meta)
        w.close()
        w.close()

    def test_rejects_bad_buffer_size(self, tmp_path, meta):
        with pytest.raises(ValueError):
            TraceWriter(tmp_path / "t.trace.jsonl", meta, buffer_events=0)


class TestRankFilename:
    def test_zero_padded(self):
        assert rank_filename("app", 7) == "app.rank0007.trace.jsonl"
        assert rank_filename("app", 7, binary=True) == "app.rank0007.trace.bin"


class TestTraceSetWriter:
    def test_writes_all_ranks(self, tmp_path):
        with TraceSetWriter(tmp_path, "app", nprocs=3, program="p") as ws:
            for r in range(3):
                for e in make_events(r, 5):
                    ws.record(e)
        paths = ws.paths()
        assert len(paths) == 3
        for r, path in enumerate(paths):
            reader = TraceReader(path)
            assert reader.meta.rank == r
            assert reader.meta.nprocs == 3
            assert len(list(reader.events())) == 5

    def test_clock_params_stored(self, tmp_path):
        ws = TraceSetWriter(
            tmp_path, "c", nprocs=2, clock_params={0: (10.0, 1e-5), 1: (-3.0, 0.0)}
        )
        ws.close()
        r0 = TraceReader(ws.paths()[0])
        assert r0.meta.clock_offset == 10.0
        assert r0.meta.clock_drift == 1e-5

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "nested"
        ws = TraceSetWriter(target, "x", nprocs=1)
        ws.close()
        assert target.exists()
