"""Dimemas-style trace replay — the baseline the paper compares against.

Section 1.1: "Dimemas ... is one such tool for performance prediction
of parallel programs using trace-based analysis.  The user specifies
the communication parameters of the target machine" — latency,
bandwidth, overheads — and the tool re-times the traced run under that
model.  Unlike the paper's graph-perturbation framework it rebuilds
*absolute* timings (so it can predict faster/slower base networks and
CPUs), but it has no stochastic noise model ("the model does not have
similar capabilities for analyzing the operating system's interference").

This module implements that replay semantics over our trace format:

* per-rank compute phases (gaps between traced events) are kept and
  scaled by ``cpu_factor``;
* point-to-point operations are re-timed under the target network
  (eager below the threshold, rendezvous above — the same protocol
  rules as :mod:`repro.mpisim.engine`);
* collectives are re-timed with the dissemination / binomial-tree
  algorithms of :mod:`repro.mpisim.collectives`.

Replay uses the same order-based matching as the analyzer (§4.1) and
the same wavefront scheduling as the streaming traversal, so it streams
and never needs synchronized clocks: all per-rank replay clocks start
at 0 at MPI_Init.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.matching import MatchError
from repro.mpisim.collectives import collective_exits
from repro.mpisim.network import NetworkModel
from repro.trace.events import COLLECTIVE_KINDS, EventKind, EventRecord

__all__ = ["ReplayParams", "ReplayResult", "replay", "replay_ladder"]


@dataclass(frozen=True)
class ReplayParams:
    """Target-machine parameters (the Dimemas machine file)."""

    latency: float = 1000.0
    bandwidth: float = 1.0
    send_overhead: float = 200.0
    recv_overhead: float = 200.0
    eager_threshold: int = 8192
    cpu_factor: float = 1.0  # target compute time = original * cpu_factor
    call_overhead: float = 10.0

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if self.cpu_factor <= 0:
            raise ValueError("cpu_factor must be > 0")

    def network(self) -> NetworkModel:
        return NetworkModel(
            latency=self.latency,
            bandwidth=self.bandwidth,
            send_overhead=self.send_overhead,
            recv_overhead=self.recv_overhead,
            eager_threshold=self.eager_threshold,
        )

    def wire(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.eager_threshold


@dataclass
class ReplayResult:
    """Re-timed run on the target machine."""

    finish_times: list
    original_finish_times: list
    params: ReplayParams

    @property
    def makespan(self) -> float:
        return max(self.finish_times)

    @property
    def original_makespan(self) -> float:
        return max(self.original_finish_times)

    @property
    def speedup(self) -> float:
        """Original makespan over replayed makespan (>1 = target faster)."""
        return self.original_makespan / self.makespan if self.makespan else float("inf")


class _CollState:
    def __init__(self, nprocs: int):
        self.entries: dict[int, tuple] = {}  # rank -> (clock, ev)
        self.exits: list | None = None
        self.consumed = 0
        self.nprocs = nprocs

    def full(self) -> bool:
        return len(self.entries) == self.nprocs


_UNMET = object()
_PRIME = object()


def replay(trace_set, params: ReplayParams | None = None) -> ReplayResult:
    """Re-time a traced run under the target machine parameters.

    The trace must describe a complete run (same guarantees the
    analyzer requires, §4.3); replay is deterministic (no noise — the
    Dimemas limitation the paper's framework addresses).
    """
    params = params or ReplayParams()
    nprocs = trace_set.nprocs
    data_mail: dict[tuple, float] = {}  # ready/arrival times keyed by channel ordinal
    ack_mail: dict[tuple, float] = {}
    colls: dict[int, _CollState] = {}
    net = params.network()
    no_noise = lambda rank, rng, t, duration: 0.0
    rngs = [np.random.default_rng(0) for _ in range(nprocs)]
    net_rng = np.random.default_rng(0)

    def eval_collective(state: _CollState, ordinal: int) -> list[float]:
        kinds = {e.kind for _, e in state.entries.values()}
        roots = {e.root for _, e in state.entries.values()}
        if len(kinds) != 1 or len(roots) != 1:
            raise MatchError(f"collective #{ordinal}: inconsistent kind/root")
        kind = next(iter(kinds))
        root = next(iter(roots))
        nbytes = max(e.nbytes for _, e in state.entries.values())
        entries = [state.entries[r][0] for r in range(nprocs)]
        return collective_exits(
            kind, entries, root if root >= 0 else 0, nbytes, net, no_noise, rngs, net_rng
        )

    def rank_proc(rank: int, events: Iterator[EventRecord]):
        send_idx: dict[tuple, int] = defaultdict(int)
        recv_idx: dict[tuple, int] = defaultdict(int)
        req_state: dict[int, tuple] = {}
        coll_counter = 0
        clock = 0.0
        prev: EventRecord | None = None
        n = 0

        for ev in events:
            n += 1
            if prev is not None:
                clock += (ev.t_start - prev.t_end) * params.cpu_factor
            kind = ev.kind

            if kind in (EventKind.INIT, EventKind.FINALIZE):
                clock += params.call_overhead

            elif kind == EventKind.SEND:
                ch = (rank, ev.peer, ev.tag)
                k = send_idx[ch]
                send_idx[ch] += 1
                ready = clock + params.send_overhead
                if params.is_eager(ev.nbytes):
                    data_mail[("d",) + ch + (k,)] = ready + params.wire(ev.nbytes)
                    clock = ready
                else:
                    # Rendezvous: publish readiness; block for the ack.
                    data_mail[("d",) + ch + (k,)] = ready
                    clock = yield ("ack", ("a",) + ch + (k,), n)

            elif kind == EventKind.RECV:
                ch = (ev.peer, rank, ev.tag)
                k = recv_idx[ch]
                recv_idx[ch] += 1
                incoming = yield ("data", ("d",) + ch + (k,), n)
                if params.is_eager(ev.nbytes):
                    clock = max(clock, incoming) + params.recv_overhead
                else:
                    start = max(clock, incoming)  # rendezvous handshake
                    clock = start + params.wire(ev.nbytes) + params.recv_overhead
                    ack_mail[("a",) + ch + (k,)] = clock + params.latency

            elif kind == EventKind.ISEND:
                ch = (rank, ev.peer, ev.tag)
                k = send_idx[ch]
                send_idx[ch] += 1
                ready = clock + params.send_overhead
                if params.is_eager(ev.nbytes):
                    data_mail[("d",) + ch + (k,)] = ready + params.wire(ev.nbytes)
                    req_state[ev.req] = ("done_at", ready)
                else:
                    data_mail[("d",) + ch + (k,)] = ready
                    req_state[ev.req] = ("ack", ("a",) + ch + (k,))
                clock = ready

            elif kind == EventKind.IRECV:
                ch = (ev.peer, rank, ev.tag)
                k = recv_idx[ch]
                recv_idx[ch] += 1
                clock += params.call_overhead
                req_state[ev.req] = ("recv", ("d",) + ch + (k,), ev.nbytes, clock)
                if not params.is_eager(ev.nbytes):
                    # Rendezvous against a posted receive: the handshake can
                    # start once both sides are ready; the ack reaches the
                    # sender one transfer + one latency later.
                    pass  # resolved when the claim is consumed below

            elif kind.is_completion:
                done = clock
                for rid in ev.completed:
                    state = req_state.pop(rid, None)
                    if state is None:
                        raise MatchError(f"rank {rank} completes unknown request {rid}")
                    if state[0] == "done_at":
                        done = max(done, state[1])
                    elif state[0] == "ack":
                        done = max(done, (yield ("ack", state[1], n)))
                    elif state[0] == "recv":
                        _, key, nbytes, posted = state
                        incoming = yield ("data", key, n)
                        if params.is_eager(nbytes):
                            arrival = max(incoming, posted) + params.recv_overhead
                        else:
                            start = max(incoming, posted)
                            arrival = start + params.wire(nbytes) + params.recv_overhead
                            ack_mail[("a",) + (key[1], key[2], key[3], key[4])] = (
                                arrival + params.latency
                            )
                        done = max(done, arrival)
                clock = max(clock, done) + params.call_overhead

            elif kind == EventKind.SENDRECV:
                ch_s = (rank, ev.peer, ev.tag)
                ks = send_idx[ch_s]
                send_idx[ch_s] += 1
                ready = clock + params.send_overhead
                if params.is_eager(ev.nbytes):
                    data_mail[("d",) + ch_s + (ks,)] = ready + params.wire(ev.nbytes)
                    send_done = ready
                else:
                    data_mail[("d",) + ch_s + (ks,)] = ready
                    send_done = None  # resolved via ack below
                ch_r = (ev.recv_peer, rank, ev.recv_tag)
                kr = recv_idx[ch_r]
                recv_idx[ch_r] += 1
                incoming = yield ("data", ("d",) + ch_r + (kr,), n)
                if params.is_eager(ev.recv_nbytes):
                    recv_done = max(clock, incoming) + params.recv_overhead
                else:
                    start = max(clock, incoming)
                    recv_done = start + params.wire(ev.recv_nbytes) + params.recv_overhead
                    ack_mail[("a",) + ch_r + (kr,)] = recv_done + params.latency
                if send_done is None:
                    send_done = yield ("ack", ("a",) + ch_s + (ks,), n)
                clock = max(send_done, recv_done)

            elif kind in COLLECTIVE_KINDS:
                ordinal = ev.coll_seq if ev.coll_seq >= 0 else coll_counter
                coll_counter += 1
                st = colls.setdefault(ordinal, _CollState(nprocs))
                st.entries[rank] = (clock, ev)
                exit_time = yield ("coll", ordinal, n)
                # The engine floors every collective exit at entry + call
                # overhead (a rank that contributes nothing still pays the
                # call itself — e.g. rank 0 of a Scan).
                clock = max(exit_time, clock + params.call_overhead)

            prev = ev
        return (clock, n)

    # ---------------------------------------------------------------- scheduler
    finish = [0.0] * nprocs
    consumed = [0] * nprocs
    done = [False] * nprocs
    procs = [rank_proc(r, trace_set.events_of(r)) for r in range(nprocs)]
    needs: list = [None] * nprocs

    def advance(rank: int, value) -> None:
        try:
            need = next(procs[rank]) if value is _PRIME else procs[rank].send(value)
        except StopIteration as stop:
            finish[rank], consumed[rank] = stop.value
            done[rank] = True
            needs[rank] = None
            return
        consumed[rank] = need[-1]
        needs[rank] = need

    def satisfy(rank: int):
        need = needs[rank]
        kind = need[0]
        if kind == "data":
            return data_mail.pop(need[1]) if need[1] in data_mail else _UNMET
        if kind == "ack":
            return ack_mail.pop(need[1]) if need[1] in ack_mail else _UNMET
        # collective
        ordinal = need[1]
        st = colls.get(ordinal)
        if st is None or not st.full():
            return _UNMET
        if st.exits is None:
            st.exits = eval_collective(st, ordinal)
        value = st.exits[rank]
        st.consumed += 1
        if st.consumed == nprocs:
            del colls[ordinal]
        return value

    for rank in range(nprocs):
        advance(rank, _PRIME)
    while not all(done):
        progressed = False
        for rank in range(nprocs):
            if done[rank]:
                continue
            value = satisfy(rank)
            if value is _UNMET:
                continue
            advance(rank, value)
            progressed = True
        if not progressed:
            blocked = [f"rank {r}: {needs[r]!r}" for r in range(nprocs) if not done[r]]
            raise MatchError("replay stalled (incomplete trace?):\n" + "\n".join(blocked))

    originals = []
    for rank in range(nprocs):
        events = list(trace_set.events_of(rank))
        originals.append(events[-1].t_end - events[0].t_start if events else 0.0)
    return ReplayResult(finish_times=finish, original_finish_times=originals, params=params)


def _replay_worker(payload, params: ReplayParams) -> ReplayResult:
    """Worker body for :func:`replay_ladder`: one target machine."""
    return replay(payload, params)


def replay_ladder(
    trace_set, params_list: list[ReplayParams], jobs: int | None = 0
) -> list[ReplayResult]:
    """Replay one trace under several target machines (a what-if ladder).

    Each point is an independent deterministic replay, so the ladder
    parallelizes over worker processes exactly like the analyzer's
    sweeps (``jobs`` convention of :mod:`repro.core.parallel`); results
    are returned in ``params_list`` order and are identical for any
    backend.
    """
    from repro.core.parallel import resolve_backend

    backend = resolve_backend(jobs)
    return backend.map(_replay_worker, list(params_list), payload=trace_set)
