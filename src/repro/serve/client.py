"""Client for the analysis daemon (``repro-client`` and library use).

Stdlib-only (``urllib.request``).  :func:`request_json` posts one job
and returns the validated result envelope; the ``render_*`` helpers
turn result payloads into **exactly** the bytes the corresponding CLI
tool writes, so ``repro-client diagnose --out a.json`` and
``repro-diagnose --format json --out b.json`` can be diffed
byte-for-byte in CI:

* diagnose / verify: ``json.dumps(report, indent=2, sort_keys=True)``
* metrics: ``json.dumps(report, indent=2)`` (insertion order is part of
  the report format, preserved across the wire by JSON parsing)
* analyze / sweep: sorted-key JSON of the result object (these have no
  CLI JSON twin; tests compare them against direct library calls)

JSON round-trips floats exactly (shortest repr), so "the same dict"
really means "the same bytes".
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.serve.wire import REQUEST_SCHEMA, ServeError, validate_result

__all__ = [
    "ServeClient",
    "render_analyze",
    "render_diagnose",
    "render_metrics",
    "render_sweep",
    "render_verify",
    "request_json",
]


def request_json(
    url: str, payload: dict[str, Any] | None = None, timeout: float = 300.0
) -> dict[str, Any]:
    """One HTTP exchange: POST ``payload`` as JSON (or GET when None),
    parse the JSON response, tolerate error statuses (the body is still
    a structured envelope)."""
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url,
        data=data,
        method="GET" if payload is None else "POST",
        headers={"Content-Type": "application/json"} if payload is not None else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            body = resp.read()
    except urllib.error.HTTPError as exc:
        body = exc.read()
    except urllib.error.URLError as exc:
        raise ServeError("internal", f"cannot reach {url}: {exc.reason}") from exc
    try:
        return json.loads(body.decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServeError("internal", f"non-JSON response from {url}: {exc}") from exc


class ServeClient:
    """Thin typed wrapper over one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def healthz(self) -> dict[str, Any]:
        return request_json(f"{self.base_url}/healthz", timeout=self.timeout)

    def metricsz(self) -> dict[str, Any]:
        return request_json(f"{self.base_url}/metricsz", timeout=self.timeout)

    def job(
        self,
        kind: str,
        *,
        traces: str | None = None,
        upload: dict[str, str] | None = None,
        stem: str,
        signature: dict[str, Any] | str | None = None,
        params: dict[str, Any] | None = None,
        inject: str | None = None,
    ) -> dict[str, Any]:
        """Submit one job; returns the validated result envelope.

        Raises :class:`ServeError` with the daemon's structured code on
        an error envelope, so callers branch on exception codes rather
        than envelope shapes.
        """
        body: dict[str, Any] = {"schema": REQUEST_SCHEMA, "stem": stem}
        if traces is not None:
            body["traces"] = traces
        if upload is not None:
            body["upload"] = upload
        if signature is not None:
            body["signature"] = signature
        if params:
            body["params"] = params
        if inject is not None:
            body["inject"] = inject
        envelope = validate_result(
            request_json(f"{self.base_url}/v1/{kind}", body, timeout=self.timeout)
        )
        if not envelope["ok"]:
            err = envelope["error"]
            raise ServeError(err["code"], err["message"])
        return envelope


def render_analyze(result: dict[str, Any]) -> str:
    """Canonical JSON of an analyze result (library-identity tested)."""
    return json.dumps(result, indent=2, sort_keys=True) + "\n"


def render_sweep(result: dict[str, Any]) -> str:
    """Canonical JSON of a sweep result (library-identity tested)."""
    return json.dumps(result, indent=2, sort_keys=True) + "\n"


def render_diagnose(result: dict[str, Any]) -> str:
    """The exact bytes of ``repro-diagnose --format json`` output."""
    return json.dumps(result["report"], indent=2, sort_keys=True) + "\n"


def render_verify(result: dict[str, Any]) -> str:
    """The exact bytes of ``repro-verify --format json`` output."""
    return json.dumps(result["report"], indent=2, sort_keys=True) + "\n"


def render_metrics(result: dict[str, Any]) -> str:
    """The exact bytes of ``repro-metrics --format json --out`` output."""
    return json.dumps(result["report"], indent=2) + "\n"
