"""Synthetic slow-rank injection for diagnosis tests and CI.

The diagnosis acceptance scenario needs a trace where one rank is
*known* to be the culprit: :func:`slow_rank` stretches every compute
gap on one rank's timeline by a constant factor, shifting all later
timestamps on that rank accordingly.  Because trace timestamps are
rank-local (§4.1) and graph construction matches events by metadata,
never by cross-rank time, the perturbed trace set still builds the
exact same graph topology — only the slowed rank's local edge weights
grow.  The rank's event-kind multiset is untouched, so the anomaly
detector's role grouping still compares it against the same peers.

``python -m repro.testing.slowrank`` applies the perturbation to an
on-disk trace set (the CI ``diagnose`` job uses it to manufacture the
faulty-rank scenario that must make ``repro-diagnose`` exit nonzero).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.trace.events import EventRecord
from repro.trace.reader import MemoryTrace, TraceSet, TraceSource
from repro.trace.writer import TraceSetWriter

__all__ = ["stretch_events", "slow_rank", "slow_rank_memory", "main"]


def stretch_events(events: Sequence[EventRecord], factor: float) -> list[EventRecord]:
    """One rank's events with every compute gap scaled by ``factor``.

    Event durations (time inside message-passing calls) are preserved;
    only the gaps between consecutive events — the implicit compute
    phases — stretch, so the injected slowness is pure compute.
    """
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    out: list[EventRecord] = []
    prev_end: float | None = None
    cursor = 0.0
    for ev in events:
        if prev_end is None:
            start = ev.t_start
        else:
            start = cursor + max(0.0, ev.t_start - prev_end) * factor
        out.append(ev.with_times(start, start + ev.duration))
        prev_end = ev.t_end
        cursor = out[-1].t_end
    return out


def slow_rank(
    per_rank: Sequence[Sequence[EventRecord]], rank: int, factor: float
) -> list[list[EventRecord]]:
    """Per-rank event lists with ``rank``'s compute stretched by ``factor``."""
    if not 0 <= rank < len(per_rank):
        raise ValueError(f"rank {rank} out of range for {len(per_rank)} ranks")
    return [
        stretch_events(events, factor) if r == rank else list(events)
        for r, events in enumerate(per_rank)
    ]


def slow_rank_memory(trace_set: TraceSource, rank: int, factor: float) -> MemoryTrace:
    """An in-memory copy of ``trace_set`` with one rank slowed."""
    return MemoryTrace(slow_rank(trace_set.load_all(), rank, factor))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.slowrank",
        description="Copy a trace set with one rank's compute gaps stretched.",
    )
    parser.add_argument("--traces", required=True, help="input trace directory")
    parser.add_argument("--stem", default="trace", help="input trace stem")
    parser.add_argument("--rank", type=int, required=True, help="rank to slow down")
    parser.add_argument(
        "--factor", type=float, default=10.0, help="compute-gap stretch factor"
    )
    parser.add_argument("--out", required=True, help="output trace directory")
    parser.add_argument("--out-stem", default=None, help="output stem (default: input)")
    args = parser.parse_args(argv)

    traces = TraceSet.open(args.traces, args.stem)
    per_rank = slow_rank(traces.load_all(), args.rank, args.factor)
    metas = [traces.meta(r) for r in range(len(per_rank))]
    with TraceSetWriter(
        args.out,
        args.out_stem or args.stem,
        nprocs=len(per_rank),
        program=metas[0].program,
        clock_params={m.rank: (m.clock_offset, m.clock_drift) for m in metas},
    ) as writer:
        for events in per_rank:
            for ev in events:
                writer.record(ev)
    total = sum(len(evs) for evs in per_rank)
    print(
        f"slowed rank {args.rank} by {args.factor:g}x: "
        f"{total} events -> {args.out}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
