"""SEC61 — the paper's quantitative experiment (§6.1).

"We performed a traced run on 128 processors of a ring-based program,
and varied the degree of perturbations from none to a mean of 700
cycles worth of perturbation at 100 cycle increments.  The resulting
change in running times increases for each processor that matches the
100 cycle increments multiplied by the number of traversals of the
ring.  For example, if the ring was traversed 10 times with each
processor injecting 100 cycles of noise for each message, the runtime
of each processor increased by approximately 10*100*128 cycles."

We reproduce exactly that: p=128 ranks, 10 traversals, per-message
noise (δ_λ = constant mean) swept 0→700 in steps of 100, expecting the
measured runtime increase to track traversals × noise × p.
"""

import time

import pytest

from benchmarks._common import bench_timings, emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, propagate
from repro.mpisim import run
from repro.noise import Constant, MachineSignature

P = 128
TRAVERSALS = 10


@pytest.fixture(scope="module")
def ring_build():
    res = run(
        token_ring(TokenRingParams(traversals=TRAVERSALS, token_bytes=1024)),
        nprocs=P,
        seed=0,
    )
    return build_graph(res.trace)


def test_sec61_per_message_noise_sweep(ring_build, benchmark):
    """Per-message noise (the paper's wording): runtime increase must be
    ≈ traversals × noise × p at every sweep point."""
    rows = []
    delays = {}
    t0 = time.perf_counter()
    for mean in range(0, 800, 100):
        sig = MachineSignature(latency=Constant(float(mean)), name=f"msg-noise-{mean}")
        res = propagate(ring_build, PerturbationSpec(sig, seed=0))
        model = TRAVERSALS * P * mean
        ratio = res.max_delay / model if model else 1.0
        rows.append([mean, res.max_delay, model, f"{ratio:.4f}"])
        delays[str(mean)] = res.max_delay
        if mean:
            assert 0.95 < ratio < 1.10, f"noise {mean}: measured {res.max_delay} vs {model}"
        else:
            assert res.max_delay == 0.0
    out = table(
        ["mean noise (cy/msg)", "measured max delay", "model T*p*mean", "ratio"],
        rows,
        widths=[20, 20, 18, 8],
    )
    emit(
        "sec61_token_ring",
        out,
        params={"nprocs": P, "traversals": TRAVERSALS, "sweep": "0..700 step 100"},
        timings={"sweep_s": time.perf_counter() - t0},
        metrics={"max_delay_by_noise": delays},
    )

    # Time one traversal of the perturbation engine at the 400-cycle point.
    sig = MachineSignature(latency=Constant(400.0))
    spec = PerturbationSpec(sig, seed=0)
    benchmark(propagate, ring_build, spec)


def test_sec61_slope_is_linear(ring_build, benchmark):
    """Linearity claim: delay(noise) is a straight line through zero."""
    from repro.core import fit_slope

    means = [0.0, 100.0, 300.0, 700.0]

    def sweep():
        ys = []
        for mean in means:
            sig = MachineSignature(latency=Constant(mean))
            ys.append(propagate(ring_build, PerturbationSpec(sig, seed=0)).max_delay)
        return ys

    ys = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = fit_slope(means, ys)
    assert slope == pytest.approx(TRAVERSALS * P, rel=0.01)
    # intercept ~ 0
    assert ys[0] == 0.0


def test_sec61_os_noise_variant(ring_build, benchmark):
    """OS-noise variant: one δ_os sample per local edge gives the same
    linear shape with slope 2 × T × p (two local attachment points per
    hop: the compute gap and the receive processing)."""
    def sweep():
        rows = []
        for mean in range(0, 800, 200):
            sig = MachineSignature(os_noise=Constant(float(mean)), name=f"os-{mean}")
            res = propagate(ring_build, PerturbationSpec(sig, seed=0))
            rows.append([mean, res.max_delay, 2 * TRAVERSALS * P * mean])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    out = table(
        ["mean os noise (cy)", "measured max delay", "model 2*T*p*mean"],
        rows,
        widths=[20, 20, 18],
    )
    emit(
        "sec61_os_variant",
        out,
        params={"nprocs": P, "traversals": TRAVERSALS, "sweep": "0..600 step 200"},
        timings=bench_timings(benchmark),
        metrics={"max_delay_by_noise": {str(r[0]): r[1] for r in rows}},
    )
    for _mean, measured, model in rows[1:]:
        assert measured == pytest.approx(model, rel=0.05)
