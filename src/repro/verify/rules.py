"""MPG3xx — the static verification rule pack.

These rules interpret the two :mod:`repro.verify` analyses — certified
makespan bounds and match-nondeterminism — and re-express the results
as findings so the existing lint reporters (text / JSON / SARIF) and
CI gates apply unchanged.

Severity policy (mirrors the MPG2xx pack): statements of *what was
certified* are INFO, always emitted, so a verification report is never
empty; judgements that the program's behavior is at risk — an
observably divergent alternative matching, a would-block chain, a
replicate escaping its certified bounds — are WARNING or ERROR, which
the CI ``verify`` job gates on.  A benign wildcard race (alternatives
exist but every one delivers an identical-shape message, the
master/worker idiom) is deliberately INFO: the nondeterminism is real
but harmless, and flagging it would make every work-stealing app fail
the gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.model import Finding, LintConfig, Severity
from repro.lint.registry import rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.engine import VerifyContext

__all__ = [
    "certified_bounds",
    "quantile_bounded_support",
    "bounds_containment",
    "containment_violation",
    "wildcard_nondeterminism",
    "match_order_race",
    "deadlock_potential",
]


@rule(
    "MPG300",
    "certified-bounds",
    Severity.INFO,
    "verify",
    "Certified makespan bounds",
    "The interval abstract interpretation produced a guaranteed "
    "[lo, hi] enclosure of the perturbed makespan without sampling. "
    "Always emitted when bounds were computed, so every verification "
    "report states its certificate.",
)
def certified_bounds(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    b = ctx.bounds
    if b is None:
        return
    cert = "absolute" if b.absolute else f"sound up to q={b.quantile:.12g} per draw"
    r = certified_bounds
    yield r.finding(
        f"certified makespan delay in [{b.makespan_lo:,.0f}, {b.makespan_hi:,.0f}] cy "
        f"over {b.sampled_edges} sampled edges "
        f"(scale {b.scale:g}, mode {b.mode}, {cert})"
    )


@rule(
    "MPG301",
    "quantile-bounded-support",
    Severity.INFO,
    "verify",
    "Bounds rely on the finite-support policy",
    "Some edge distributions have unbounded support (Normal, "
    "Exponential, ...); their intervals were cut at a tail quantile, "
    "so the certificate holds up to that quantile per affected draw "
    "rather than absolutely.  See docs/VERIFICATION.md for the union-"
    "bound failure probability.",
)
def quantile_bounded_support(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    b = ctx.bounds
    if b is None or b.absolute:
        return
    r = quantile_bounded_support
    yield r.finding(
        f"{b.q_bounded_edges} of {b.sampled_edges} sampled edges use "
        f"quantile-bounded intervals (q={b.quantile:.12g}); the makespan "
        f"certificate is sound up to q per affected draw"
    )


@rule(
    "MPG302",
    "bounds-containment",
    Severity.INFO,
    "verify",
    "Monte-Carlo replicates verified inside the bounds",
    "The runtime cross-check propagated actual Monte-Carlo replicates "
    "and every per-rank delay fell inside the static enclosure — the "
    "invariant tying the static layer to the execution engines.",
)
def bounds_containment(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    if ctx.bounds is None or ctx.containment is None:
        return
    checked, violations = ctx.containment
    if violations:
        return  # MPG303 carries the failure
    r = bounds_containment
    yield r.finding(
        f"all {checked} Monte-Carlo replicates contained in the certified "
        f"bounds (engine {ctx.config.engine})"
    )


@rule(
    "MPG303",
    "containment-violation",
    Severity.ERROR,
    "verify",
    "A replicate escaped the certified bounds",
    "A Monte-Carlo replicate's per-rank delay fell outside the static "
    "[lo, hi] enclosure.  The bounds are constructed to be exact "
    "(monotone float kernels, identical schedules), so this indicates "
    "a soundness bug in the interval derivation or a distribution "
    "family whose sampler disagrees with its declared support — "
    "treat as a verifier defect, not program behavior.",
)
def containment_violation(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    if ctx.bounds is None or ctx.containment is None:
        return
    checked, violations = ctx.containment
    r = containment_violation
    for rep in violations:
        yield r.finding(
            f"replicate {rep} of {checked} escaped the certified bounds "
            f"[{ctx.bounds.makespan_lo:,.0f}, {ctx.bounds.makespan_hi:,.0f}] cy"
        )


@rule(
    "MPG310",
    "wildcard-nondeterminism",
    Severity.INFO,
    "verify",
    "A wildcard receive has feasible alternative senders",
    "A receive posted with ANY_SOURCE/ANY_TAG could legally have "
    "matched a different sender (the swapped matching is closable and "
    "not excluded by happens-before or MPI non-overtaking order). "
    "Every alternative delivers an identical-shape message, so the "
    "nondeterminism is benign — reported as information because the "
    "schedule dependence is real and worth knowing about.",
)
def wildcard_nondeterminism(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    m = ctx.matches
    if m is None:
        return
    r = wildcard_nondeterminism
    for race in m.races:
        if race.divergent:
            continue  # MPG311 carries the observable case
        rank, seq = race.recv
        alts = ", ".join(f"r{a[0]}#{a[1]}" for a in race.alternatives)
        yield r.finding(
            f"wildcard receive r{rank}#{seq} matched send "
            f"r{race.matched[0]}#{race.matched[1]} but could also have "
            f"matched {alts} (identical tag and size)",
            rank=rank,
            seq=seq,
        )


@rule(
    "MPG311",
    "match-order-race",
    Severity.WARNING,
    "verify",
    "An alternative matching is observably different",
    "A feasible alternative sender for a wildcard receive carries a "
    "different tag or payload size than the message that actually "
    "matched: under another legal schedule the program receives "
    "different data.  This is a genuine match-order race — the "
    "recorded run is just one of several observably distinct "
    "executions.",
)
def match_order_race(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    m = ctx.matches
    if m is None:
        return
    r = match_order_race
    for race in m.races:
        if not race.divergent:
            continue
        rank, seq = race.recv
        alts = ", ".join(f"r{a[0]}#{a[1]}" for a in race.divergent)
        yield r.finding(
            f"ambiguous wildcard receive r{rank}#{seq}: matched send "
            f"r{race.matched[0]}#{race.matched[1]} but {alts} "
            f"{'carries' if len(race.divergent) == 1 else 'carry'} a "
            f"different tag or size — match order changes what the "
            f"program reads",
            rank=rank,
            seq=seq,
        )


@rule(
    "MPG312",
    "deadlock-potential",
    Severity.WARNING,
    "verify",
    "A reordered matching would block a receive forever",
    "If the wildcard receive stole the flagged message, the receive "
    "that actually consumed it could accept no other sender — the "
    "reordered execution deadlocks.  The recorded run completed only "
    "because the race resolved favorably.",
)
def deadlock_potential(ctx: "VerifyContext", config: LintConfig) -> Iterator[Finding]:
    m = ctx.matches
    if m is None:
        return
    r = deadlock_potential
    for chain in m.deadlocks:
        rank, seq = chain.recv
        yield r.finding(
            f"wildcard receive r{rank}#{seq} can steal send "
            f"r{chain.stolen[0]}#{chain.stolen[1]} from receive "
            f"r{chain.starved[0]}#{chain.starved[1]}, which then has no "
            f"feasible sender — potential deadlock under match reordering",
            rank=rank,
            seq=seq,
        )
