"""Event model for per-rank message-passing traces.

Section 4: "Each processor creates an event trace that records the
local timestamp, the event type, and event metadata for each event that
occurs."  An :class:`EventRecord` is one such entry.  Timestamps are
*local* to the recording rank (its skewed, drifting clock) — nothing in
the analyzer may compare timestamps across ranks (§4.1); only per-rank
intervals and per-rank ordering are meaningful.

Computation is not recorded explicitly: the compute phase of Fig. 1 is
the gap between the END of one event and the START of the next on the
same rank, which becomes a *local edge* in the message-passing graph.

Event kinds cover the MPI-1 send/receive-model subset of §3 plus the
single-node bookkeeping calls (INIT/FINALIZE).  Matching metadata:

* pairwise ops carry ``peer``/``tag``/``nbytes`` — the *resolved* values
  (a wildcard receive records the source that actually matched, which is
  legitimate because the trace describes a completed run);
* nonblocking ops carry a rank-unique request id ``req``; completion ops
  (WAIT/WAITALL/WAITSOME/TEST) list the ids they completed — the
  "status flags that uniquely identify the send/receive transaction"
  used in Fig. 3 to match wait pairs;
* collectives carry ``root`` (where applicable) and ``coll_seq``, the
  per-rank collective ordinal.  MPI requires all ranks to invoke
  collectives on a communicator in the same order, so ordinal matching
  is exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable

__all__ = [
    "EventKind",
    "EventRecord",
    "TraceMeta",
    "PAIRWISE_KINDS",
    "NONBLOCKING_KINDS",
    "COMPLETION_KINDS",
    "COLLECTIVE_KINDS",
    "ROOTED_COLLECTIVES",
    "LOCAL_KINDS",
]


class EventKind(enum.IntEnum):
    """Trace event types (MPI-1 send/receive-model subset, §3)."""

    INIT = 0
    FINALIZE = 1
    SEND = 2
    RECV = 3
    ISEND = 4
    IRECV = 5
    WAIT = 6
    WAITALL = 7
    WAITSOME = 8
    TEST = 9
    BARRIER = 10
    BCAST = 11
    REDUCE = 12
    ALLREDUCE = 13
    GATHER = 14
    SCATTER = 15
    ALLGATHER = 16
    ALLTOALL = 17
    SENDRECV = 18
    SCAN = 19
    REDUCE_SCATTER = 20

    @property
    def is_collective(self) -> bool:
        return self in COLLECTIVE_KINDS

    @property
    def is_pairwise(self) -> bool:
        return self in PAIRWISE_KINDS

    @property
    def is_nonblocking(self) -> bool:
        return self in NONBLOCKING_KINDS

    @property
    def is_completion(self) -> bool:
        return self in COMPLETION_KINDS

    @property
    def is_local(self) -> bool:
        return self in LOCAL_KINDS


PAIRWISE_KINDS = frozenset(
    {EventKind.SEND, EventKind.RECV, EventKind.ISEND, EventKind.IRECV, EventKind.SENDRECV}
)
NONBLOCKING_KINDS = frozenset({EventKind.ISEND, EventKind.IRECV})
COMPLETION_KINDS = frozenset(
    {EventKind.WAIT, EventKind.WAITALL, EventKind.WAITSOME, EventKind.TEST}
)
COLLECTIVE_KINDS = frozenset(
    {
        EventKind.BARRIER,
        EventKind.BCAST,
        EventKind.REDUCE,
        EventKind.ALLREDUCE,
        EventKind.GATHER,
        EventKind.SCATTER,
        EventKind.ALLGATHER,
        EventKind.ALLTOALL,
        EventKind.SCAN,
        EventKind.REDUCE_SCATTER,
    }
)
ROOTED_COLLECTIVES = frozenset(
    {EventKind.BCAST, EventKind.REDUCE, EventKind.GATHER, EventKind.SCATTER}
)
LOCAL_KINDS = frozenset({EventKind.INIT, EventKind.FINALIZE})


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One traced message-passing event on one rank.

    Attributes
    ----------
    rank:
        Recording processor.
    seq:
        Per-rank sequence number (0-based, dense).
    kind:
        The :class:`EventKind`.
    t_start, t_end:
        Entry/exit local timestamps in cycles; ``t_end >= t_start``.
    peer:
        Destination (sends) or resolved source (receives); ``-1`` if n/a.
    tag:
        Message tag; ``-1`` if n/a.
    nbytes:
        Payload size in bytes (0 for empty/synchronization messages).
    req:
        Rank-unique request id for ISEND/IRECV; ``-1`` otherwise.
    reqs:
        Request ids a completion op (WAIT/WAITALL/WAITSOME/TEST) refers
        to; for WAIT this is a 1-tuple equal to ``(req of the op,)``.
    completed:
        The subset of ``reqs`` actually completed by this op (relevant
        for WAITSOME/TEST; equals ``reqs`` for WAIT/WAITALL).
    root:
        Root rank for rooted collectives; ``-1`` otherwise.
    coll_seq:
        Per-rank collective ordinal (0-based) used for cross-rank
        collective matching; ``-1`` for non-collectives.
    recv_peer, recv_tag, recv_nbytes:
        For SENDRECV only: the receive half's metadata (``peer``/``tag``/
        ``nbytes`` describe the send half).  ``-1``/``0`` otherwise.
    src_any, tag_any:
        The receive (half) was *posted* with a wildcard source/tag
        (``ANY_SOURCE``/``ANY_TAG``).  ``peer``/``tag`` still record the
        resolved values; the flags preserve what the program asked for,
        which is what match-nondeterminism analysis needs.
    """

    rank: int
    seq: int
    kind: EventKind
    t_start: float
    t_end: float
    peer: int = -1
    tag: int = -1
    nbytes: int = 0
    req: int = -1
    reqs: tuple = ()
    completed: tuple = ()
    root: int = -1
    coll_seq: int = -1
    recv_peer: int = -1
    recv_tag: int = -1
    recv_nbytes: int = 0
    src_any: bool = False
    tag_any: bool = False

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"event r{self.rank}#{self.seq} {self.kind.name}: "
                f"t_end {self.t_end} < t_start {self.t_start}"
            )
        if self.seq < 0 or self.rank < 0:
            raise ValueError("rank and seq must be nonnegative")
        object.__setattr__(self, "reqs", tuple(self.reqs))
        object.__setattr__(self, "completed", tuple(self.completed))

    @property
    def duration(self) -> float:
        """Elapsed local time inside the call."""
        return self.t_end - self.t_start

    @property
    def key(self) -> tuple[int, int]:
        """Globally unique event identity ``(rank, seq)``."""
        return (self.rank, self.seq)

    def with_times(self, t_start: float, t_end: float) -> "EventRecord":
        """Copy with replaced timestamps (used by trace transformers)."""
        return replace(self, t_start=t_start, t_end=t_end)

    def describe(self) -> str:
        """One-line human-readable rendering (CLI / debugging)."""
        bits = [
            f"r{self.rank}#{self.seq}",
            self.kind.name,
            f"[{self.t_start:.0f},{self.t_end:.0f}]",
        ]
        if self.kind.is_pairwise:
            bits.append(f"peer={self.peer} tag={self.tag} {self.nbytes}B")
            if self.src_any or self.tag_any:
                wild = "+".join(
                    n for n, f in (("ANY_SOURCE", self.src_any), ("ANY_TAG", self.tag_any)) if f
                )
                bits.append(f"posted={wild}")
        if self.kind in NONBLOCKING_KINDS:
            bits.append(f"req={self.req}")
        if self.kind.is_completion:
            bits.append(f"reqs={list(self.reqs)} done={list(self.completed)}")
        if self.kind.is_collective:
            bits.append(f"coll#{self.coll_seq}" + (f" root={self.root}" if self.root >= 0 else ""))
        return " ".join(bits)


@dataclass(frozen=True, slots=True)
class TraceMeta:
    """Per-rank trace header.

    ``clock_offset``/``clock_drift`` document the rank's local clock as
    ``local = global * (1 + drift) + offset``.  They are informational:
    the analyzer never uses them (that is the point of §4.1), but the
    validation tooling can, to compare against simulator ground truth.
    """

    rank: int
    nprocs: int
    program: str = ""
    clock_offset: float = 0.0
    clock_drift: float = 0.0
    extra: tuple = ()

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.nprocs:
            raise ValueError(f"rank {self.rank} out of range for nprocs {self.nprocs}")
        object.__setattr__(self, "extra", tuple(self.extra))

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "nprocs": self.nprocs,
            "program": self.program,
            "clock_offset": self.clock_offset,
            "clock_drift": self.clock_drift,
            "extra": list(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceMeta":
        return cls(
            rank=data["rank"],
            nprocs=data["nprocs"],
            program=data.get("program", ""),
            clock_offset=data.get("clock_offset", 0.0),
            clock_drift=data.get("clock_drift", 0.0),
            extra=tuple(tuple(x) if isinstance(x, list) else x for x in data.get("extra", ())),
        )


def check_rank_order(events: Iterable[EventRecord]) -> None:
    """Raise if per-rank events are not dense, ordered and time-monotone."""
    prev_seq = -1
    prev_end = float("-inf")
    for ev in events:
        if ev.seq != prev_seq + 1:
            raise ValueError(f"non-dense sequence at r{ev.rank}#{ev.seq} (prev {prev_seq})")
        if ev.t_start < prev_end:
            raise ValueError(
                f"time went backwards at r{ev.rank}#{ev.seq}: "
                f"start {ev.t_start} < previous end {prev_end}"
            )
        prev_seq = ev.seq
        prev_end = ev.t_end
