"""Wire schemas of the analysis daemon (:mod:`repro.serve`).

Requests and results are JSON envelopes validated like every other
report schema in the suite (checkpoint shards, plan cache blobs, lint
reports): an explicit ``schema`` tag, a closed set of fields, and a
structured error object instead of a stack trace.

``repro-serve-request/1``
    ``{"schema", "traces" | "upload", "stem", "signature"?, "params"?,
    "inject"?}`` — the trace source, an optional machine signature
    (inline dict or server-side path), and endpoint-specific analysis
    parameters.  Unknown top-level keys and unknown ``params`` keys are
    rejected: a typo'd parameter must fail loudly, never silently fall
    back to a default.
``repro-serve-result/1``
    ``{"schema", "ok", "kind", "build"?, "result"?}`` on success;
    ``{"schema", "ok": false, "error": {"code", "message"}}`` on
    failure.  ``build`` reports the content-addressed build key and
    whether this request hit the live cache — the observable face of
    request coalescing.

Every handler failure becomes one of the :data:`ERROR_CODES` with an
HTTP status, so clients can branch on ``error.code`` without parsing
prose.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "ENDPOINTS",
    "ERROR_CODES",
    "REQUEST_SCHEMA",
    "RESULT_SCHEMA",
    "ServeError",
    "error_envelope",
    "ok_envelope",
    "validate_request",
    "validate_result",
]

REQUEST_SCHEMA = "repro-serve-request/1"
RESULT_SCHEMA = "repro-serve-result/1"

#: The job endpoints (POST /v1/<endpoint>); /healthz and /metricsz are
#: GET probes outside the job envelope.
ENDPOINTS = ("analyze", "sweep", "diagnose", "metrics", "verify")

#: code -> HTTP status.  ``bad-request`` covers malformed envelopes and
#: invalid analysis parameters; ``input-error`` covers well-formed
#: requests whose traces/signature cannot be loaded; ``fault-injected``
#: is the structured face of an injected crash; ``worker-lost`` means a
#: pool worker died and the FaultPolicy gave up.
ERROR_CODES: dict[str, int] = {
    "bad-request": 400,
    "forbidden": 403,
    "not-found": 404,
    "method-not-allowed": 405,
    "input-error": 400,
    "overloaded": 429,
    "timeout": 504,
    "fault-injected": 500,
    "worker-lost": 500,
    "internal": 500,
}

MODES = ("additive", "threshold")
ENGINES = ("auto", "incore", "graph", "streaming", "compiled")
COARSEN = ("auto", "on", "off")
COLLECTIVES = ("hub", "butterfly")
INJECTIONS = ("error", "kill-worker")

#: params accepted per endpoint (name -> validator); everything is
#: optional — defaults mirror the CLI flags exactly.
_COMMON = ("seed", "scale", "mode", "engine", "coarsen", "collective_mode", "eager_threshold")
_PARAM_KEYS: dict[str, tuple[str, ...]] = {
    "analyze": _COMMON + ("replicates", "resume"),
    "sweep": _COMMON + ("scales", "resume"),
    "diagnose": _COMMON + ("replicates",),
    "metrics": ("windows",),
    "verify": _COMMON + ("replicates", "quantile", "matches"),
}


class ServeError(Exception):
    """A structured daemon failure: an :data:`ERROR_CODES` code plus a
    human-readable message.  Raised by validation and handlers, caught
    once at the dispatch layer, and rendered as an error envelope —
    nothing in the daemon surfaces a Python traceback to the client."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]
        self.message = message


def _bad(message: str) -> ServeError:
    return ServeError("bad-request", message)


def _expect(obj: Any, typ: type, what: str) -> Any:
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(obj, bool) and typ is not bool:
        raise _bad(f"{what} must be {typ.__name__}, got bool")
    if not isinstance(obj, typ):
        raise _bad(f"{what} must be {typ.__name__}, got {type(obj).__name__}")
    return obj


def _expect_number(obj: Any, what: str) -> float:
    if isinstance(obj, bool) or not isinstance(obj, (int, float)):
        raise _bad(f"{what} must be a number, got {type(obj).__name__}")
    return float(obj)


def _expect_choice(obj: Any, choices: tuple[str, ...], what: str) -> str:
    value = _expect(obj, str, what)
    if value not in choices:
        raise _bad(f"{what} must be one of {choices}, got {value!r}")
    return str(value)


def _validate_params(kind: str, params: Mapping[str, Any]) -> dict[str, Any]:
    allowed = _PARAM_KEYS[kind]
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise _bad(
            f"unknown params for {kind!r}: {', '.join(unknown)}; allowed: {', '.join(allowed)}"
        )
    out: dict[str, Any] = {}
    for key, value in params.items():
        if key == "seed":
            out[key] = int(_expect(value, int, "params.seed"))
        elif key in ("scale", "quantile"):
            out[key] = _expect_number(value, f"params.{key}")
        elif key == "mode":
            out[key] = _expect_choice(value, MODES, "params.mode")
        elif key == "engine":
            out[key] = _expect_choice(value, ENGINES, "params.engine")
        elif key == "coarsen":
            out[key] = _expect_choice(value, COARSEN, "params.coarsen")
        elif key == "collective_mode":
            out[key] = _expect_choice(value, COLLECTIVES, "params.collective_mode")
        elif key == "eager_threshold":
            out[key] = None if value is None else int(_expect(value, int, "params.eager_threshold"))
        elif key in ("replicates", "windows"):
            n = int(_expect(value, int, f"params.{key}"))
            if n < 0 or (key == "windows" and n < 1):
                raise _bad(f"params.{key} must be {'>= 1' if key == 'windows' else '>= 0'}")
            out[key] = n
        elif key in ("resume", "matches"):
            out[key] = bool(_expect(value, bool, f"params.{key}"))
        elif key == "scales":
            seq = _expect(value, list, "params.scales")
            if not seq:
                raise _bad("params.scales must be a non-empty list of numbers")
            out[key] = [_expect_number(v, "params.scales[*]") for v in seq]
    return out


def validate_request(payload: Any, kind: str) -> dict[str, Any]:
    """Validate and normalize one job request body.

    Returns ``{"traces", "upload", "stem", "signature", "params",
    "inject"}`` with ``params`` filtered to the endpoint's allowed keys
    and every value type-checked.  Raises :class:`ServeError`
    (``bad-request``) on any violation.
    """
    if kind not in ENDPOINTS:
        raise ServeError("not-found", f"unknown endpoint {kind!r}")
    body = _expect(payload, dict, "request body")
    if body.get("schema") != REQUEST_SCHEMA:
        raise _bad(f"schema must be {REQUEST_SCHEMA!r}, got {body.get('schema')!r}")
    known = {"schema", "traces", "upload", "stem", "signature", "params", "inject"}
    unknown = sorted(set(body) - known)
    if unknown:
        raise _bad(f"unknown request field(s): {', '.join(unknown)}")

    traces = body.get("traces")
    upload = body.get("upload")
    if (traces is None) == (upload is None):
        raise _bad("provide exactly one of 'traces' (server-side dir) or 'upload' (inline files)")
    if traces is not None:
        traces = _expect(traces, str, "traces")
    if upload is not None:
        upload = _expect(upload, dict, "upload")
        if not upload:
            raise _bad("upload must contain at least one file")
        for name, content in upload.items():
            _expect(name, str, "upload filename")
            _expect(content, str, f"upload[{name!r}]")
            if "/" in name or "\\" in name or name.startswith("."):
                raise _bad(f"upload filename {name!r} must be a bare file name")

    stem = _expect(body.get("stem"), str, "stem")
    if not stem:
        raise _bad("stem must be non-empty")

    signature = body.get("signature")
    if signature is not None and not isinstance(signature, (str, dict)):
        raise _bad("signature must be a server-side path (str) or an inline signature dict")

    params = _validate_params(kind, _expect(body.get("params", {}), dict, "params"))

    inject = body.get("inject")
    if inject is not None:
        inject = _expect_choice(inject, INJECTIONS, "inject")

    return {
        "traces": traces,
        "upload": upload,
        "stem": stem,
        "signature": signature,
        "params": params,
        "inject": inject,
    }


def ok_envelope(kind: str, result: dict[str, Any], build: dict[str, Any] | None = None) -> dict:
    """The success envelope for one completed job."""
    env: dict[str, Any] = {"schema": RESULT_SCHEMA, "ok": True, "kind": kind}
    if build is not None:
        env["build"] = build
    env["result"] = result
    return env


def error_envelope(code: str, message: str, kind: str | None = None) -> dict:
    """The failure envelope (``ok: false`` + structured error)."""
    env: dict[str, Any] = {"schema": RESULT_SCHEMA, "ok": False}
    if kind is not None:
        env["kind"] = kind
    env["error"] = {"code": code, "message": message}
    return env


def validate_result(payload: Any) -> dict[str, Any]:
    """Client-side envelope check: the daemon spoke the result schema.

    Returns the payload; raises :class:`ServeError` (``internal``) when
    the response is not a well-formed ``repro-serve-result/1`` envelope.
    """
    if not isinstance(payload, dict) or payload.get("schema") != RESULT_SCHEMA:
        raise ServeError("internal", f"response is not a {RESULT_SCHEMA} envelope")
    if not isinstance(payload.get("ok"), bool):
        raise ServeError("internal", "response envelope missing boolean 'ok'")
    if payload["ok"]:
        if not isinstance(payload.get("result"), dict):
            raise ServeError("internal", "ok response missing 'result' object")
    else:
        err = payload.get("error")
        if not isinstance(err, dict) or err.get("code") not in ERROR_CODES:
            raise ServeError("internal", "error response missing structured 'error'")
    return payload
