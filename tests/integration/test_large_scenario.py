"""One large end-to-end scenario exercising everything at once:

64 ranks, a mixed-pattern application (halo exchange + collectives +
wildcard master traffic), binary trace files on disk, validation,
in-core and streaming analysis, microbench-measured signature, history,
and the Dimemas replay — the closest thing to a production run.
"""

import pytest

from repro.baselines import ReplayParams, replay
from repro.core import (
    ExperimentHistory,
    PerturbationSpec,
    StreamingTraversal,
    absorption_map,
    build_graph,
    check_correctness,
    critical_path,
    monte_carlo,
    propagate,
    runtime_impact,
)
from repro.machines import noisy_cluster, quiet_cluster
from repro.microbench import measure_machine
from repro.mpisim import (
    ANY_SOURCE,
    Allreduce,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Waitall,
    run_to_files,
)
from repro.trace import TraceSet, validate_traces
from repro.trace.stats import trace_stats

P = 64


def mixed_app(me):
    """Halo exchange + periodic allreduce + master heartbeat traffic."""
    p = me.size
    left, right = (me.rank - 1) % p, (me.rank + 1) % p
    for it in range(4):
        r1 = yield Irecv(source=left, tag=1)
        r2 = yield Irecv(source=right, tag=2)
        s1 = yield Isend(dest=right, nbytes=2048, tag=1)
        s2 = yield Isend(dest=left, nbytes=2048, tag=2)
        yield Compute(30_000.0 * (1.0 + 0.1 * (me.rank % 5)))
        yield Waitall([r1, r2, s1, s2])
        yield Allreduce(nbytes=16)
        if it == 1:
            # Heartbeats to rank 0 via wildcard receives.
            if me.rank == 0:
                for _ in range(p - 1):
                    yield Recv(source=ANY_SOURCE, tag=9)
                yield Bcast(root=0, nbytes=64)
            else:
                yield Send(dest=0, nbytes=4, tag=9)
                yield Bcast(root=0, nbytes=64)


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("large")
    machine = quiet_cluster(P, seed=0)
    result = run_to_files(
        mixed_app, tmp, "mixed", machine=machine, seed=3, binary=True, program_name="mixed"
    )
    return tmp, result


def test_large_scenario_end_to_end(scenario):
    tmp, result = scenario
    traces = TraceSet.open(tmp, "mixed")
    assert traces.nprocs == P

    # -- structural soundness -------------------------------------------------
    report = validate_traces(traces)
    assert report.ok
    stats = trace_stats(traces)
    assert stats.total_events == report.event_count
    assert stats.total_bytes > P * 4 * 2 * 2048  # halos dominate

    # -- signature from a measured machine -------------------------------------
    mb = measure_machine(noisy_cluster(2, skewed_clocks=False), seed=1, ftq_quanta=512,
                         pingpong_iterations=64, bandwidth_iterations=8, mraz_messages=64)
    spec = PerturbationSpec(mb.to_signature(), seed=5)

    # -- both engines agree ------------------------------------------------------
    build = build_graph(traces)
    incore = propagate(build, spec)
    streaming = StreamingTraversal(spec).run(traces)
    for a, b in zip(incore.final_delay, streaming.final_delay):
        assert a == pytest.approx(b, abs=1e-6)
    assert incore.max_delay > 0

    # -- analyses run and are coherent --------------------------------------------
    assert check_correctness(build, incore).ok
    impact = runtime_impact(build, incore)
    assert impact.max_slowdown > 0
    cp = critical_path(build, incore)
    assert cp.total_delay == pytest.approx(incore.max_delay)
    am = absorption_map(build, incore)
    assert 0.0 <= am.overall_ratio() <= 1.0

    # -- monte carlo over the big build ---------------------------------------------
    dist = monte_carlo(build, spec, replicates=5)
    assert dist.nprocs == P

    # -- history + exact replay of the experiment -------------------------------------
    history = ExperimentHistory(tmp / "history.jsonl")
    rec = history.record("large-scenario", spec, incore, build.config)
    replayed = propagate(build, history.replay_spec(rec))
    assert list(replayed.final_delay) == list(rec.delays)

    # -- Dimemas baseline identity on the same files ------------------------------------
    net = quiet_cluster(P, skewed_clocks=False).network
    rp = replay(
        traces,
        ReplayParams(
            latency=net.latency,
            bandwidth=net.bandwidth,
            send_overhead=net.send_overhead,
            recv_overhead=net.recv_overhead,
            eager_threshold=net.eager_threshold,
        ),
    )
    # Identity holds only up to clock drift here: the preset machine's
    # per-rank clocks drift by up to ±100 ppm (§4.1 realism), so traced
    # intervals differ from global durations by that order.
    assert rp.makespan == pytest.approx(rp.original_makespan, rel=5e-4)
