"""On-disk checkpoint store for seed-addressed analyses.

The §5–§6 analyses (:func:`~repro.core.montecarlo.monte_carlo`
replicates, :func:`~repro.core.sweep.sweep_scales` /
:func:`~repro.core.sweep.sweep_signatures` points,
:func:`~repro.core.influence.rank_influence` rows) are fan-outs of
independent, *seed-addressed* propagations: each unit of work is fully
determined by ``(seed, signature, scale, mode, engine)`` over one fixed
build.  That addressing is what makes checkpointing trivial to get
right — a resumed run recomputes exactly the missing shards and is
**bit-identical** to an uninterrupted one, because a shard's content is
a pure function of its key.

One shard = one JSON file = one result row (a per-rank delay vector),
carrying its :class:`ShardKey` plus a content digest.  Shards are
written atomically (:func:`repro._util.atomic_write_text`), so a crash
mid-write never leaves a truncated shard; a shard that *is* corrupt
(bit rot, manual tampering, version skew) fails its digest or key check
on read and is silently treated as missing — counted as
``checkpoint.corrupt`` — and recomputed.

Resumability is exposed as ``--checkpoint DIR`` / ``--resume`` on
``repro-analyze`` and ``repro-sweep``: ``--checkpoint`` writes shards
as results are produced; ``--resume`` additionally reads existing
shards first, so a run killed mid-flight continues where it stopped.

JSON round-trips Python floats exactly (shortest-repr), so cached rows
are bit-for-bit the rows that were computed.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro import obs
from repro._util import atomic_write_bytes, atomic_write_text

__all__ = [
    "CheckpointStore",
    "ShardKey",
    "build_digest",
    "digest_of",
    "load_plan",
    "plan_cache_path",
    "resolve_rows",
    "save_plan",
    "signature_digest",
    "trace_digest",
]

SHARD_SCHEMA = "repro-checkpoint-shard/1"
PLAN_SCHEMA = "repro-plan-cache/1"

#: Environment hook consumed by the fault-injection harness
#: (:mod:`repro.testing.faults`): kill the process after N shard writes.
KILL_AFTER_SHARDS_ENV = "REPRO_FAULT_KILL_AFTER_SHARDS"


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj) -> str:
    """Stable short hex digest of a JSON-able object (canonical form)."""
    return hashlib.sha256(_canonical(obj).encode()).hexdigest()[:16]


def signature_digest(signature) -> str:
    """Content digest of a :class:`~repro.noise.signature.MachineSignature`."""
    return digest_of(signature.to_dict())


def build_digest(build) -> str:
    """Content digest of a built graph (the checkpoint *context*).

    Two different trace sets can coincide on every key field
    (seed/signature/scale/mode/engine) yet propagate differently, so
    every shard key also carries a digest of the structure it was
    computed over: edge weights + delta kinds + node/edge/rank counts.
    Cached on the build (computed once per analysis).
    """
    cached = build.__dict__.get("_checkpoint_digest")
    if cached is not None:
        return cached
    import numpy as np

    g = build.graph
    h = hashlib.sha256()
    h.update(f"{g.nprocs}:{len(g.nodes)}:{len(g.edges)}".encode())
    h.update(np.array([e.weight for e in g.edges], dtype=np.float64).tobytes())
    h.update(np.array([int(e.delta.kind) for e in g.edges], dtype=np.uint8).tobytes())
    digest = h.hexdigest()[:16]
    build.__dict__["_checkpoint_digest"] = digest
    return digest


def trace_digest(trace_set) -> str:
    """Cheap context digest for engines that never build a graph
    (streaming sweeps): rank count + per-rank program names."""
    return digest_of(
        {
            "nprocs": trace_set.nprocs,
            "programs": [trace_set.meta(r).program for r in range(trace_set.nprocs)],
        }
    )


@dataclass(frozen=True)
class ShardKey:
    """Address of one checkpointed result row.

    ``kind`` is the analysis family (``"mc"``, ``"sweep_scales"``,
    ``"sweep_signatures"``, ``"influence"``); ``context`` is the
    :func:`build_digest` / :func:`trace_digest` of the structure the
    row was computed over.  Every field participates in the shard
    filename, so distinct keys can never collide on disk.
    """

    kind: str
    seed: int
    signature: str
    scale: float
    mode: str
    engine: str
    context: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "signature": self.signature,
            "scale": self.scale,
            "mode": self.mode,
            "engine": self.engine,
            "context": self.context,
        }

    @property
    def filename(self) -> str:
        return f"{self.kind}-{self.seed}-{digest_of(self.to_dict())}.json"


class CheckpointStore:
    """Directory of checksummed, atomically-written result shards.

    Safe under concurrent access from one store *or* many: a shard's
    content is a pure function of its key, writes are atomic renames of
    uniquely-named temp files (concurrent :meth:`put` of the same key is
    last-writer-wins of identical bytes — never a torn file), and
    :meth:`get` tolerates a shard appearing or vanishing between the
    lookup and the read (both count as a miss, never an error).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.writes = 0
        self._writes_lock = threading.Lock()
        self._write_hook = None
        if os.environ.get(KILL_AFTER_SHARDS_ENV):
            # Deterministic chaos: the fault harness arms a hook that
            # kills this process after N successful shard writes.
            from repro.testing.faults import checkpoint_write_hook

            self._write_hook = checkpoint_write_hook()

    @classmethod
    def coerce(cls, value: "CheckpointStore | str | Path | None") -> "CheckpointStore | None":
        """Accept a store, a directory path, or None (no checkpointing)."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    def path_for(self, key: ShardKey) -> Path:
        return self.root / key.filename

    def get(self, key: ShardKey) -> list[float] | None:
        """The cached row for ``key``, or None (missing *or* corrupt).

        A corrupt shard — unparsable JSON, key mismatch, or content
        digest mismatch — counts as ``checkpoint.corrupt`` and reads as
        missing, so the row is recomputed and the shard rewritten.

        The read is a single open (no exists() pre-check): a shard
        written by a concurrent writer between lookup and read is
        simply found, and one unlinked in that window is a plain miss
        (``FileNotFoundError`` → ``checkpoint.misses``, not corrupt).
        Atomic-rename writes mean whatever is opened is complete.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            obs.add("checkpoint.misses")
            return None
        except OSError:
            obs.add("checkpoint.corrupt")
            return None
        try:
            record = json.loads(text)
            result = record["result"]
            ok = (
                record.get("schema") == SHARD_SCHEMA
                and record.get("key") == key.to_dict()
                and record.get("digest") == digest_of(result)
                and isinstance(result, list)
            )
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            ok = False
        if not ok:
            obs.add("checkpoint.corrupt")
            return None
        obs.add("checkpoint.hits")
        return result

    def put(self, key: ShardKey, row: Sequence[float]) -> Path:
        """Persist one result row under ``key`` (atomic write)."""
        result = [float(v) for v in row]
        record = {
            "schema": SHARD_SCHEMA,
            "key": key.to_dict(),
            "result": result,
            "digest": digest_of(result),
        }
        path = atomic_write_text(self.path_for(key), json.dumps(record) + "\n")
        with self._writes_lock:
            self.writes += 1
            writes = self.writes
        obs.add("checkpoint.writes")
        if self._write_hook is not None:
            self._write_hook(writes)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.root)!r})"


def plan_cache_path(store: CheckpointStore, build, coarsen: str) -> Path:
    """Location of the persisted compiled plan for ``(build, coarsen)``."""
    return store.root / f"plan-{build_digest(build)}-{coarsen}.pkl"


def load_plan(store: CheckpointStore, build, coarsen: str):
    """The cached :class:`~repro.core.compiled.CompiledPlan`, or None.

    Validation mirrors shard reads: a stale or corrupt blob — wrong
    schema, digest, numpy version (the sampler tables mirror numpy's
    private ziggurat layout), or graph shape — counts as
    ``checkpoint.plan_corrupt`` and reads as missing, so the plan is
    recompiled and the cache rewritten.  Like :meth:`CheckpointStore.
    get`, the read is a single open: a plan cached (or evicted) by a
    concurrent writer between lookup and read is found (or a plain
    miss), and the atomic-rename write in :func:`save_plan` means two
    racing writers of one path leave a complete blob, never a torn one.
    """
    import pickle

    import numpy as np

    path = plan_cache_path(store, build, coarsen)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        obs.add("checkpoint.plan_misses")
        return None
    except OSError:
        obs.add("checkpoint.plan_corrupt")
        return None
    try:
        blob = pickle.loads(data)
        plan = blob["plan"]
        g = build.graph
        ok = (
            blob.get("schema") == PLAN_SCHEMA
            and blob.get("digest") == build_digest(build)
            and blob.get("numpy") == np.__version__
            and blob.get("coarsen") == coarsen
            and plan.n_nodes == len(g.nodes)
            and plan.n_edges == len(g.edges)
        )
    except Exception:
        ok = False
    if not ok:
        obs.add("checkpoint.plan_corrupt")
        return None
    obs.add("checkpoint.plan_hits")
    return plan


def save_plan(store: CheckpointStore, build, coarsen: str, plan) -> Path:
    """Persist a compiled plan under the build digest (atomic write)."""
    import pickle

    import numpy as np

    blob = {
        "schema": PLAN_SCHEMA,
        "digest": build_digest(build),
        "numpy": np.__version__,
        "coarsen": coarsen,
        "plan": plan,
    }
    path = atomic_write_bytes(plan_cache_path(store, build, coarsen), pickle.dumps(blob))
    obs.add("checkpoint.plan_writes")
    return path


def _storable(row) -> bool:
    """Only real rows are persisted — never ``None`` / NaN placeholders
    left by ``FaultPolicy(on_failure='skip')``."""
    if row is None:
        return False
    try:
        return all(math.isfinite(float(v)) for v in row)
    except (TypeError, ValueError):
        return False


def resolve_rows(
    store: CheckpointStore | None,
    keys: Sequence[ShardKey],
    compute: Callable[[list[int]], Sequence],
    resume: bool = False,
) -> list:
    """Gather one row per key: cached shards first, then compute the rest.

    ``compute(missing_indices)`` returns (or yields) one row per missing
    index, in that order; rows are checkpointed **as they arrive**, so a
    generator-backed compute gives incremental progress a kill cannot
    erase.  With ``store=None`` this degenerates to ``compute(all)``;
    with ``resume=False`` nothing is read but everything is written.
    """
    rows: list = [None] * len(keys)
    missing = list(range(len(keys)))
    if store is not None and resume:
        missing = []
        for i, key in enumerate(keys):
            row = store.get(key)
            if row is None:
                missing.append(i)
            else:
                rows[i] = row
    if missing:
        for i, row in zip(missing, compute(missing)):
            rows[i] = row
            if store is not None and _storable(row):
                store.put(keys[i], row)
    return rows
