"""ABL3 — empirical vs fitted-parametric distributions, per-edge vs
interval-scaled application (§5 + DESIGN.md §4 extension).

The paper proposes two parameterization methods (fit an assumed family
vs keep the empirical samples); we additionally ablate *how* the
measured per-quantum FTQ distribution is applied to local edges:

* per-edge (paper): one δ_os draw per local edge, regardless of length —
  under-predicts for apps whose compute phases span many FTQ quanta;
* interval-scaled (extension): one draw per measured quantum of observed
  edge duration — accumulates interference the way the machine does.

Ground truth comes from re-running the app on the actually-noisy
machine.  The noisy machine shares the quiet machine's *base* network
(latency/bandwidth): the methodology predicts the effect of
*perturbations* on top of the traced timings, not of base-parameter
changes (§6 — the trace already embeds the original machine's latency
in its event timings).
"""

import dataclasses
import time

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, propagate
from repro.machines import noisy_cluster, quiet_cluster
from repro.microbench import measure_machine
from repro.mpisim import Machine, run


def _controlled_noisy(p: int, network) -> Machine:
    """The noisy preset's OS noise and jitter on the quiet base network."""
    from repro.noise import Exponential

    donor = noisy_cluster(p, skewed_clocks=False)
    return Machine(
        nprocs=p,
        network=network.with_jitter(Exponential(60.0)),
        noise=donor.noise,
        name="noisy-controlled",
    )


def test_abl_empirical_vs_fitted(benchmark):
    p = 8
    prog = token_ring(TokenRingParams(traversals=6))
    quiet = quiet_cluster(p, skewed_clocks=False)
    noisy = _controlled_noisy(p, quiet.network)

    base = run(prog, machine=quiet, seed=0)
    actual = run(prog, machine=noisy, seed=0).makespan - base.makespan

    report = measure_machine(_controlled_noisy(2, quiet.network), seed=1, ftq_quanta=2048,
                             pingpong_iterations=256, bandwidth_iterations=32,
                             mraz_messages=256)
    build = build_graph(base.trace)

    rows = []
    results = {}
    t0 = time.perf_counter()
    for method in ("empirical", "fit"):
        for scaling in ("per-edge", "interval"):
            sig = report.to_signature(method=method)
            if scaling == "per-edge":
                sig = dataclasses.replace(sig, os_quantum=0.0)
            res = propagate(build, PerturbationSpec(sig, seed=0))
            results[(method, scaling)] = res.max_delay
            rows.append(
                [method, scaling, f"{res.max_delay:,.0f}", f"{res.max_delay / actual:.2f}"]
            )
    rows.append(["(ground truth)", "-", f"{actual:,.0f}", "1.00"])

    emit(
        "abl_empirical",
        f"machine: {report.summary()}\n\n"
        + table(["parameterization", "os scaling", "predicted delay", "pred/actual"], rows,
                widths=[16, 10, 16, 12]),
        params={"nprocs": p, "traversals": 6},
        timings={"predictions_s": time.perf_counter() - t0},
        metrics={
            "actual_delay": actual,
            "predicted": {f"{m}/{s}": v for (m, s), v in results.items()},
        },
    )

    # Empirical and fitted agree with each other (same measured samples).
    assert 0.5 < results[("empirical", "interval")] / results[("fit", "interval")] < 2.0
    # Interval scaling must close most of the per-edge model's gap.
    per_edge_err = abs(1.0 - results[("empirical", "per-edge")] / actual)
    interval_err = abs(1.0 - results[("empirical", "interval")] / actual)
    assert interval_err < per_edge_err
    assert 0.4 < results[("empirical", "interval")] / actual < 2.5
    # The paper's per-edge model still lands within an order of magnitude.
    assert 0.05 < results[("empirical", "per-edge")] / actual < 10.0

    sig = report.to_signature()
    benchmark(propagate, build, PerturbationSpec(sig, seed=0))
