"""Trace-set → message-passing graph construction (§4, §4.2).

The builder loads per-rank events, matches them by execution order
(:mod:`repro.core.matching`), and materializes the subgraph templates of
:mod:`repro.core.primitives` into an in-core
:class:`~repro.core.graph.MessagePassingGraph`.

For traces that do not fit in memory, use the windowed streaming
traversal (:class:`repro.core.traversal.StreamingTraversal`) instead —
it consumes the same templates without ever materializing the graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.core.diagnostics import AnalysisWarning
from repro.core.graph import EdgeKind, MessagePassingGraph, Phase
from repro.core.matching import MatchResult, match_events
from repro.core.primitives import (
    BuildConfig,
    EdgeT,
    collective_edges,
    gap_edge,
    intra_event_edge,
    transfer_edges,
)
from repro.trace.events import EventKind, EventRecord

__all__ = ["BuildConfig", "BuildResult", "build_graph"]


@dataclass
class BuildResult:
    """Graph plus the match metadata used to build it.

    ``warnings`` carries structured :class:`~repro.core.diagnostics.
    AnalysisWarning` objects for anomalies found while matching (e.g.
    nonblocking requests whose completion was never observed) — the
    §4.3 cases the tool must flag rather than silently mis-model.
    """

    graph: MessagePassingGraph
    match: MatchResult
    events: list  # per-rank event lists (kept for analysis/export)
    config: BuildConfig
    warnings: list = field(default_factory=list)

    def __getstate__(self) -> dict:
        # Derived caches ride __dict__ (checkpoint digest, compiled-plan
        # memo); the per-build compile lock (repro.core.compiled) is not
        # picklable and is process-local by nature — drop it so builds
        # still cross the pool boundary.
        state = dict(self.__dict__)
        state.pop("_compiled_plans_lock", None)
        return state


def _match_warnings(match: MatchResult, per_rank: list) -> list[AnalysisWarning]:
    """Structured §4.3 warnings for unanchored nonblocking requests."""
    out: list[AnalysisWarning] = []
    for rank, seq in match.uncompleted:
        ev = per_rank[rank][seq]
        if ev.kind == EventKind.ISEND:
            out.append(
                AnalysisWarning(
                    f"rank {rank} event #{seq}: ISEND to {ev.peer} (tag {ev.tag}) never "
                    f"completed — sender-side delays from this transfer are not modeled; "
                    f"correctness of arbitrary perturbations cannot be guaranteed (§4.3)",
                    code="uncompleted-isend",
                    rank=rank,
                    seq=seq,
                )
            )
        else:
            out.append(
                AnalysisWarning(
                    f"rank {rank} event #{seq}: IRECV from {ev.peer} (tag {ev.tag}) never "
                    f"completed — incoming delays from this transfer are dropped (§4.3)",
                    code="uncompleted-irecv",
                    rank=rank,
                    seq=seq,
                )
            )
    return out


class _EndpointResolver:
    """Map template endpoint descriptors to node ids, creating virtual
    nodes (hubs, butterfly rounds) on demand."""

    def __init__(self, graph: MessagePassingGraph):
        self.graph = graph
        self._virtual: dict[tuple, int] = {}

    def __call__(self, ep: tuple) -> int:
        if ep[0] == "sub":
            return self.graph.node_of(ep[1], ep[2], Phase(ep[3]))
        nid = self._virtual.get(ep)
        if nid is None:
            if ep[0] == "hub":
                rank, seq, label = -1, ep[1], f"hub#{ep[1]}"
            else:  # ("bfly", ordinal, rank, k)
                rank, seq, label = ep[2], ep[1], f"bfly#{ep[1]}r{ep[2]}k{ep[3]}"
            nid = self.graph.add_node(
                rank, seq, Phase.VIRTUAL, EventKind.BARRIER, math.nan, label=label
            )
            self._virtual[ep] = nid
        return nid


def _edge_weight(
    et: EdgeT, graph: MessagePassingGraph, src: int, dst: int, config: BuildConfig
) -> float:
    """Message-edge weight: 0 in the paper's clock-free model; the
    *signed* cross-rank timestamp lag in absolute mode (global clock).

    The sign matters: conservative acknowledgement edges point from a
    receive completion back to an eager send's END, which finished
    earlier in wall-clock time — their observed lag is negative, and
    flooring it at zero would inject phantom delays into the absolute
    recomputation (see :func:`repro.core.traversal.propagate_absolute`).
    """
    if et.kind == EdgeKind.LOCAL or not config.absolute_weights:
        return et.weight
    t_src = graph.nodes[src].t_local
    t_dst = graph.nodes[dst].t_local
    if math.isnan(t_src) or math.isnan(t_dst):
        return et.weight
    return t_dst - t_src


def build_graph(trace_set, config: BuildConfig | None = None) -> BuildResult:
    """Build the full message-passing graph of a complete run.

    ``trace_set`` is a :class:`repro.trace.reader.TraceSet` /
    :class:`~repro.trace.reader.MemoryTrace` (anything with ``nprocs``
    and ``load_all``).
    """
    config = config or BuildConfig()
    with obs.span("build_graph", engine="incore"):
        with obs.span("read_traces"):
            per_rank: list[list[EventRecord]] = trace_set.load_all()
        nprocs = trace_set.nprocs
        match = match_events(per_rank)
        with obs.span("materialize_graph"):
            graph = MessagePassingGraph(nprocs)
            resolve = _EndpointResolver(graph)

            def add(et: EdgeT) -> None:
                src = resolve(et.src)
                dst = resolve(et.dst)
                weight = _edge_weight(et, graph, src, dst, config)
                graph.add_edge(src, dst, et.kind, weight, et.delta, et.label)

            # Straight-line per-rank chains (§2): subevent nodes, intra
            # edges, gaps.
            for rank, events in enumerate(per_rank):
                prev: EventRecord | None = None
                for ev in events:
                    graph.add_node(
                        rank, ev.seq, Phase.START, ev.kind, ev.t_start, label=f"{ev.kind.name}.s"
                    )
                    end_id = graph.add_node(
                        rank, ev.seq, Phase.END, ev.kind, ev.t_end, label=f"{ev.kind.name}.e"
                    )
                    add(intra_event_edge(ev))
                    if prev is not None:
                        add(gap_edge(prev, ev))
                    if ev.kind == EventKind.FINALIZE:
                        graph.final_nodes[rank] = end_id
                    prev = ev

            # Message edges for every matched transfer (Figs. 2/3).
            for skey, rkey in match.transfer_of.items():
                send_ev = per_rank[skey[0]][skey[1]]
                recv_ev = per_rank[rkey[0]][rkey[1]]
                for et in transfer_edges(
                    send_ev,
                    recv_ev,
                    match.completion_of.get(skey),
                    match.completion_of.get(rkey),
                    config,
                    chan_index=match.transfer_index[skey],
                ):
                    add(et)

            # Collective subgraphs (Fig. 4 / butterfly).
            for group in match.collectives:
                for et in collective_edges(group, nprocs, config):
                    add(et)

        obs.span_add("graph.nodes", len(graph.nodes))
        obs.span_add("graph.edges", len(graph.edges))
        warnings = _match_warnings(match, per_rank)
        for w in warnings:
            obs.add(f"warnings.{w.code}", w.count)
        return BuildResult(
            graph=graph, match=match, events=per_rank, config=config, warnings=warnings
        )
