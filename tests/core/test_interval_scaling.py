"""Tests for the interval-scaled OS-noise extension (``os_quantum``).

The paper applies the measured δ_os distribution once per local edge;
the extension draws one sample per measurement quantum of observed edge
duration (DESIGN.md §4, ablated in ABL3).
"""


import pytest

from repro.core import PerturbationSpec, build_graph, propagate
from repro.core.graph import DeltaKind, DeltaSpec
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature

from tests.conftest import assert_engines_agree, plan_program


def ds(**kw):
    kw.setdefault("uid", (1, 2))
    return DeltaSpec(DeltaKind.OS, rank=0, **kw)


class TestSignatureQuantum:
    def test_os_draws_counts(self):
        sig = MachineSignature(os_noise=Constant(10.0), os_quantum=1000.0)
        assert sig.os_draws(0.0) == 1
        assert sig.os_draws(1.0) == 1
        assert sig.os_draws(1000.0) == 1
        assert sig.os_draws(1001.0) == 2
        assert sig.os_draws(10_500.0) == 11

    def test_zero_quantum_always_one(self):
        sig = MachineSignature(os_noise=Constant(10.0))
        assert sig.os_draws(1e9) == 1

    def test_sample_interval_sums(self, rng):
        sig = MachineSignature(os_noise=Constant(10.0), os_quantum=1000.0)
        assert sig.sample_os_interval(rng, 0, 5000.0) == pytest.approx(50.0)
        assert sig.sample_os_interval(rng, 0, 500.0) == pytest.approx(10.0)

    def test_serialization_round_trip(self):
        sig = MachineSignature(os_noise=Constant(5.0), os_quantum=2048.0)
        restored = MachineSignature.from_dict(sig.to_dict())
        assert restored.os_quantum == 2048.0

    def test_scaled_preserves_quantum(self):
        sig = MachineSignature(os_noise=Constant(5.0), os_quantum=777.0)
        assert sig.scaled(2.0).os_quantum == 777.0


class TestSpecWeighting:
    def test_os_sampling_scales_with_weight(self):
        sig = MachineSignature(os_noise=Constant(10.0), os_quantum=100.0)
        spec = PerturbationSpec(sig, seed=0)
        assert spec.sample(ds(), weight=1000.0) == pytest.approx(100.0)
        assert spec.sample(ds(), weight=0.0) == pytest.approx(10.0)

    def test_expected_matches(self):
        sig = MachineSignature(os_noise=Exponential(10.0), os_quantum=100.0)
        spec = PerturbationSpec(sig, seed=0)
        assert spec.expected(ds(), weight=1000.0) == pytest.approx(100.0)

    def test_non_os_kinds_ignore_weight(self):
        sig = MachineSignature(latency=Constant(5.0), os_quantum=100.0)
        spec = PerturbationSpec(sig, seed=0)
        d = DeltaSpec(DeltaKind.LATENCY, src=0, dst=1, uid=(3,))
        assert spec.sample(d, weight=10_000.0) == spec.sample(d, weight=0.0)

    def test_deterministic_per_weight(self):
        sig = MachineSignature(os_noise=Exponential(10.0), os_quantum=100.0)
        spec = PerturbationSpec(sig, seed=4)
        a = spec.sample(ds(), weight=5000.0)
        b = spec.sample(ds(), weight=5000.0)
        assert a == b


class TestTraversalIntegration:
    def test_longer_edges_more_noise(self, ring_trace):
        quantum_sig = MachineSignature(os_noise=Constant(10.0), os_quantum=1000.0)
        edge_sig = MachineSignature(os_noise=Constant(10.0))
        build = build_graph(ring_trace)
        scaled = propagate(build, PerturbationSpec(quantum_sig, seed=0))
        flat = propagate(build, PerturbationSpec(edge_sig, seed=0))
        # The ring has multi-thousand-cycle compute gaps: interval scaling
        # must add strictly more delay than one draw per edge.
        assert scaled.max_delay > flat.max_delay

    def test_streaming_equality_with_quantum(self, ring_trace, stencil_trace):
        sig = MachineSignature(
            os_noise=Exponential(50.0), latency=Exponential(20.0), os_quantum=2000.0
        )
        spec = PerturbationSpec(sig, seed=6)
        assert_engines_agree(ring_trace, spec)
        assert_engines_agree(stencil_trace, spec)

    def test_streaming_equality_random_plans(self):
        sig = MachineSignature(os_noise=Exponential(80.0), os_quantum=500.0)
        spec = PerturbationSpec(sig, seed=1)
        plan = [("compute", 3000), ("nb", 256), ("allreduce", 32), ("ring", 128)]
        trace = run(plan_program(plan), nprocs=4, seed=2).trace
        assert_engines_agree(trace, spec)


class TestHarnessIntegration:
    def test_measured_signature_carries_quantum(self):
        from repro.microbench import measure_machine
        from repro.mpisim import Machine
        from repro.noise import DistributionNoise

        machine = Machine(nprocs=2, noise=DistributionNoise(Exponential(50.0)), name="m")
        report = measure_machine(machine, seed=0, ftq_quanta=64, ftq_quantum=12_345.0,
                                 pingpong_iterations=8, bandwidth_iterations=4,
                                 mraz_messages=8)
        sig = report.to_signature()
        assert sig.os_quantum == 12_345.0
