"""Tests for delta propagation — the heart of the paper.

The numeric cases hand-build traces and use constant distributions so
Eq. (1)/Eq. (2) can be checked to the cycle; the property-based cases
generate random-but-valid runs through the simulator and verify the
global invariants (zero identity, monotonicity, streaming ≡ in-core,
order preservation).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BuildConfig,
    PerturbationSpec,
    StreamingTraversal,
    build_graph,
    propagate,
)
from repro.core.graph import Phase
from repro.core.matching import MatchError
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace

from tests.conftest import assert_engines_agree, plan_program

A, L, B = 100.0, 50.0, 0.01  # os, latency, per-byte constants


def const_spec(seed=0, scale=1.0):
    return PerturbationSpec(
        MachineSignature(os_noise=Constant(A), latency=Constant(L), per_byte=Constant(B)),
        seed=seed,
        scale=scale,
    )


def ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


def blocking_pair_trace(nbytes=512):
    """Hand-built Fig. 2 scenario on two ranks."""
    r0 = [
        ev(0, 0, EventKind.INIT, 0.0, 10.0),
        ev(0, 1, EventKind.SEND, 100.0, 200.0, peer=1, tag=0, nbytes=nbytes),
        ev(0, 2, EventKind.FINALIZE, 300.0, 310.0),
    ]
    r1 = [
        ev(1, 0, EventKind.INIT, 0.0, 10.0),
        ev(1, 1, EventKind.RECV, 50.0, 250.0, peer=0, tag=0, nbytes=nbytes),
        ev(1, 2, EventKind.FINALIZE, 260.0, 270.0),
    ]
    return MemoryTrace([r0, r1])


class TestEq1BlockingPair:
    def test_additive_delays_exact(self):
        trace = blocking_pair_trace(nbytes=512)
        build = build_graph(trace)
        res = propagate(build, const_spec())
        g = build.graph
        D = res.node_delay
        transfer = L + 512 * B  # δ_λ1 + δ_t(d)

        d_send_start = D[g.node_of(0, 1, Phase.START)]
        assert d_send_start == pytest.approx(A)  # one gap δ_os

        # Eq. 1 line 2: t'_re = t_rs + δ_os2 + δ_λ1 + δ_t(d), on top of the
        # sender's accumulated delay.
        d_recv_end = D[g.node_of(1, 1, Phase.END)]
        assert d_recv_end == pytest.approx(d_send_start + transfer + A)

        # Eq. 1 line 1: send end = max(local δ_os1 path, round-trip path).
        d_send_end = D[g.node_of(0, 1, Phase.END)]
        assert d_send_end == pytest.approx(max(d_send_start + A, d_recv_end + L))

        assert res.final_delay[0] == pytest.approx(d_send_end + A)  # + finalize gap
        assert res.final_delay[1] == pytest.approx(d_recv_end + A)

    def test_sender_local_path_can_dominate(self):
        """With a huge δ_os1 and tiny messaging deltas, Eq. 1's max picks
        the local term."""
        spec = PerturbationSpec(
            MachineSignature(os_noise=Constant(10_000.0), latency=Constant(0.0)),
            seed=0,
        )
        trace = blocking_pair_trace(nbytes=0)
        build = build_graph(trace)
        res = propagate(build, spec)
        g = build.graph
        d_send_end = res.node_delay[g.node_of(0, 1, Phase.END)]
        d_send_start = res.node_delay[g.node_of(0, 1, Phase.START)]
        # local path: start + δ_os1; remote path adds only another os2=10k
        # so remote (start+10k+0+0) ties local — verify against both.
        assert d_send_end == pytest.approx(d_send_start + 10_000.0)

    def test_threshold_mode_absorbs_small_deltas(self):
        """Eq. 1 literal: δ below the observed interval does nothing on
        local edges.  Message edges have zero observed weight (§6), so the
        only surviving contribution is the δ_os2 riding the data path."""
        trace = blocking_pair_trace()
        build = build_graph(trace)
        # Gap weights are 90/40, intra send weight 100; os=1 << all weights;
        # latency/bandwidth zero.
        spec = PerturbationSpec(MachineSignature(os_noise=Constant(1.0)), seed=0)
        res = propagate(build, spec, mode="threshold")
        assert res.final_delay == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_threshold_mode_excess_propagates(self):
        trace = blocking_pair_trace()
        build = build_graph(trace)
        spec = PerturbationSpec(MachineSignature(os_noise=Constant(500.0)), seed=0)
        add = propagate(build, spec, mode="additive")
        thr = propagate(build, spec, mode="threshold")
        assert 0.0 < thr.max_delay < add.max_delay


def nonblocking_trace():
    """Hand-built Fig. 3 scenario: isend/irecv matched by wait pairs."""
    r0 = [
        ev(0, 0, EventKind.INIT, 0.0, 10.0),
        ev(0, 1, EventKind.ISEND, 100.0, 110.0, peer=1, tag=0, nbytes=100, req=0),
        ev(0, 2, EventKind.WAIT, 500.0, 520.0, reqs=(0,), completed=(0,)),
        ev(0, 3, EventKind.FINALIZE, 600.0, 610.0),
    ]
    r1 = [
        ev(1, 0, EventKind.INIT, 0.0, 10.0),
        ev(1, 1, EventKind.IRECV, 50.0, 60.0, peer=0, tag=0, nbytes=100, req=0),
        ev(1, 2, EventKind.WAIT, 400.0, 450.0, reqs=(0,), completed=(0,)),
        ev(1, 3, EventKind.FINALIZE, 500.0, 510.0),
    ]
    return MemoryTrace([r0, r1])


class TestEq2Nonblocking:
    def test_immediate_returns_unmodified(self):
        trace = nonblocking_trace()
        build = build_graph(trace)
        res = propagate(build, const_spec())
        g = build.graph
        D = res.node_delay
        # Eq. 2 note: isend/irecv END delays come only from their own rank's
        # local chain (one gap δ_os each), never from the transfer.
        assert D[g.node_of(0, 1, Phase.END)] == pytest.approx(A)
        assert D[g.node_of(1, 1, Phase.END)] == pytest.approx(A)

    def test_transfer_lands_on_waits(self):
        trace = nonblocking_trace()
        build = build_graph(trace)
        res = propagate(build, const_spec())
        g = build.graph
        D = res.node_delay
        transfer = L + 100 * B
        # Receiver's wait: local chain (2 gaps) vs data path (gap + transfer + os2).
        d_wr = D[g.node_of(1, 2, Phase.END)]
        assert d_wr == pytest.approx(max(2 * A, A + transfer + A))
        # Sender's wait: local chain vs rendezvous roundtrip from posted irecv.
        d_ws = D[g.node_of(0, 2, Phase.END)]
        d_irecv_end = D[g.node_of(1, 1, Phase.END)]
        roundtrip = L + 100 * B + A + L
        assert d_ws == pytest.approx(max(2 * A, d_irecv_end + roundtrip))


def allreduce_trace(p=3, nbytes=64):
    per_rank = []
    for r in range(p):
        per_rank.append(
            [
                ev(r, 0, EventKind.INIT, 0.0, 10.0),
                ev(r, 1, EventKind.ALLREDUCE, 100.0, 300.0, nbytes=nbytes, coll_seq=0),
                ev(r, 2, EventKind.FINALIZE, 400.0, 410.0),
            ]
        )
    return MemoryTrace(per_rank)


class TestFig4Collectives:
    def test_allreduce_hub_exact(self):
        trace = allreduce_trace(p=3, nbytes=64)
        build = build_graph(trace)
        res = propagate(build, const_spec())
        g = build.graph
        D = res.node_delay
        l_delta = 2 * (A + L + 64 * B)  # ceil(log2 3) = 2 rounds
        for r in range(3):
            d_start = D[g.node_of(r, 1, Phase.START)]
            assert d_start == pytest.approx(A)
            # Fig. 4: every END gets max over fan-ins of (D_start + l_δ).
            assert D[g.node_of(r, 1, Phase.END)] == pytest.approx(A + l_delta)

    def test_max_perturbed_rank_dominates(self):
        """'forcing the slowest node ... to dominate the performance of
        the entire collective' (§3.2)."""
        sig = MachineSignature(
            os_noise=Constant(0.0),
            latency=Constant(0.0),
            os_noise_by_rank={2: Constant(5_000.0)},
        )
        trace = allreduce_trace(p=4)
        build = build_graph(trace)
        res = propagate(build, PerturbationSpec(sig, seed=0))
        # Rank 2 enters 5000 late (its compute gap) and contributes
        # 2 rounds x 5000 of fan-in noise; the hub max reaches every rank.
        hub = 5_000.0 + 2 * 5_000.0
        for r, d in enumerate(res.final_delay):
            # Rank 2 pays one more gap sample before its FINALIZE.
            assert d == pytest.approx(hub + (5_000.0 if r == 2 else 0.0))

    def test_reduce_exact(self):
        p, root = 3, 1
        per_rank = []
        for r in range(p):
            per_rank.append(
                [
                    ev(r, 0, EventKind.INIT, 0.0, 10.0),
                    ev(r, 1, EventKind.REDUCE, 100.0, 300.0, nbytes=8, root=root, coll_seq=0),
                    ev(r, 2, EventKind.FINALIZE, 400.0, 410.0),
                ]
            )
        build = build_graph(MemoryTrace(per_rank))
        res = propagate(build, const_spec())
        g = build.graph
        D = res.node_delay
        # Root END: max(own local δ_os, fan-in single-latency paths).
        d_root = D[g.node_of(root, 1, Phase.END)]
        assert d_root == pytest.approx(max(A + A, A + L))
        # Non-root ENDs: max(own local δ_os path, root's contribution).
        for r in range(p):
            if r != root:
                assert D[g.node_of(r, 1, Phase.END)] == pytest.approx(max(2 * A, d_root))


class TestGlobalInvariants:
    def test_zero_perturbation_identity(self, ring_trace, stencil_trace):
        spec = PerturbationSpec(MachineSignature(), seed=0)
        for trace in (ring_trace, stencil_trace):
            build = build_graph(trace)
            res = propagate(build, spec)
            assert all(d == 0.0 for d in res.final_delay)
            assert all(d == 0.0 for d in res.node_delay)

    def test_streaming_equals_incore_canned(self, ring_trace, stencil_trace, mixed_spec):
        for trace in (ring_trace, stencil_trace):
            assert_engines_agree(trace, mixed_spec)
            assert_engines_agree(trace, mixed_spec, config=BuildConfig(collective_mode="butterfly"))
            assert_engines_agree(trace, mixed_spec, mode="threshold")

    def test_monotone_in_scale(self, ring_trace, mixed_spec):
        build = build_graph(ring_trace)
        prev = None
        for scale in (0.0, 0.5, 1.0, 2.0, 4.0):
            res = propagate(build, mixed_spec.scaled(scale))
            if prev is not None:
                for a, b in zip(prev, res.final_delay):
                    assert b >= a - 1e-9
            prev = res.final_delay

    def test_negative_scale_clamps_and_orders(self, ring_trace, const_spec):
        build = build_graph(ring_trace)
        res = propagate(build, const_spec.scaled(-1.0))
        assert res.max_delay <= 0.0  # speedup exploration (§7)
        assert res.clamped_edges > 0  # some intervals hit the zero floor
        from repro.core import check_correctness

        report = check_correctness(build, res)
        assert report.ok  # order still preserved

    def test_bad_mode_rejected(self, ring_trace, const_spec):
        build = build_graph(ring_trace)
        with pytest.raises(ValueError, match="mode"):
            propagate(build, const_spec, mode="magic")


class TestStreamingWindow:
    def test_tiny_window_still_correct(self, ring_trace, const_spec):
        res = StreamingTraversal(const_spec, window=1).run(ring_trace)
        build = build_graph(ring_trace)
        expected = propagate(build, const_spec)
        for a, b in zip(res.final_delay, expected.final_delay):
            assert a == pytest.approx(b)

    def test_window_auto_expands_on_long_matching_distance(self, const_spec):
        """A rank far ahead of the floor gets capped; when progress then
        requires it, the window doubles with a warning (§4's tunable
        buffer)."""
        from repro.mpisim import Compute, Recv, Send

        def prog(me):
            if me.rank == 2:
                for _ in range(12):
                    yield Send(dest=0, nbytes=1)
            elif me.rank == 0:
                for _ in range(12):
                    yield Recv(source=2)
                yield Recv(source=1)
            else:
                yield Compute(100.0)
                yield Send(dest=0, nbytes=1)

        trace = run(prog, nprocs=3, seed=0).trace
        tr = StreamingTraversal(const_spec, window=3)
        res = tr.run(trace)
        assert any("window" in w for w in res.warnings)
        expected = propagate(build_graph(trace), const_spec)
        for a, b in zip(res.final_delay, expected.final_delay):
            assert a == pytest.approx(b)

    def test_window_validation(self, const_spec):
        with pytest.raises(ValueError):
            StreamingTraversal(const_spec, window=0)

    def test_mailbox_high_water_reported(self, stencil_trace, const_spec):
        tr = StreamingTraversal(const_spec)
        tr.run(stencil_trace)
        assert tr.max_mailbox > 0

    def test_corrupt_trace_stalls_cleanly(self, const_spec):
        # A send whose receive never appears -> deterministic stall error.
        r0 = [
            ev(0, 0, EventKind.INIT, 0.0, 10.0),
            ev(0, 1, EventKind.RECV, 20.0, 30.0, peer=1, tag=0),
            ev(0, 2, EventKind.FINALIZE, 40.0, 50.0),
        ]
        r1 = [
            ev(1, 0, EventKind.INIT, 0.0, 10.0),
            ev(1, 1, EventKind.FINALIZE, 40.0, 50.0),
        ]
        with pytest.raises(MatchError, match="stalled"):
            StreamingTraversal(const_spec).run(MemoryTrace([r0, r1]))


# ---------------------------------------------------------------------------
# Property-based: random valid runs through the full pipeline
# ---------------------------------------------------------------------------

_round = st.one_of(
    st.tuples(st.just("compute"), st.integers(100, 5000)),
    st.tuples(st.just("ring"), st.integers(0, 20_000)),
    st.tuples(st.just("xchg"), st.integers(0, 20_000)),
    st.tuples(st.just("nb"), st.integers(0, 20_000)),
    st.tuples(st.just("allreduce"), st.integers(0, 256)),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("bcast"), st.integers(0, 7), st.integers(0, 256)),
    st.tuples(st.just("reduce"), st.integers(0, 7), st.integers(0, 256)),
    st.tuples(st.just("scan"), st.integers(0, 256)),
    st.tuples(st.just("rscatter"), st.integers(0, 256)),
)

_plans = st.lists(_round, min_size=1, max_size=5)


@given(plan=_plans, p=st.integers(2, 5), seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_streaming_equals_incore_property(plan, p, seed):
    """For ANY valid run, the windowed streaming traversal reproduces the
    in-core propagation bit-for-bit (ABL2's invariant)."""
    trace = run(plan_program(plan), nprocs=p, seed=seed % 100).trace
    spec = PerturbationSpec(
        MachineSignature(
            os_noise=Exponential(60.0), latency=Exponential(30.0), per_byte=Constant(0.002)
        ),
        seed=seed,
    )
    assert_engines_agree(trace, spec)


@given(plan=_plans, p=st.integers(2, 4), seed=st.integers(0, 10**6))
@settings(max_examples=20, deadline=None)
def test_order_preserved_property(plan, p, seed):
    """Nonnegative perturbations never reorder any rank's subevents (§4.3)."""
    from repro.core import check_correctness

    trace = run(plan_program(plan), nprocs=p, seed=seed % 100).trace
    spec = PerturbationSpec(
        MachineSignature(os_noise=Exponential(500.0), latency=Exponential(250.0)),
        seed=seed,
    )
    build = build_graph(trace)
    res = propagate(build, spec)
    report = check_correctness(build, res)
    assert report.ok, report.order_violations


@given(plan=_plans, p=st.integers(2, 4))
@settings(max_examples=15, deadline=None)
def test_zero_identity_property(plan, p):
    trace = run(plan_program(plan), nprocs=p, seed=0).trace
    build = build_graph(trace)
    res = propagate(build, PerturbationSpec(MachineSignature(), seed=0))
    assert all(d == 0.0 for d in res.final_delay)
