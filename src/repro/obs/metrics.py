"""Metric primitives and the mergeable registry.

Three metric kinds cover everything the analyzer wants to report about
itself:

:class:`Counter`
    Monotone accumulator (nodes built, messages matched, replicates
    completed).  Merging sums.
:class:`Gauge`
    Point-in-time value with an explicit merge ``mode`` — ``"last"``
    (default), ``"max"`` (high-water marks like mailbox occupancy), or
    ``"min"``.
:class:`Timer`
    Duration accumulator (total seconds, observation count, max single
    observation, p50/p95 tails).  Merging sums totals/counts and maxes
    the max; percentiles come from a bounded deterministic sample
    reservoir (every k-th observation, k doubling once the reservoir
    fills), so tails are exact for short timers and a uniform-stride
    approximation for long ones — totals stay exact either way.

A :class:`MetricsRegistry` owns one namespace of metrics and knows how
to :meth:`~MetricsRegistry.snapshot` itself into plain dicts and
:meth:`~MetricsRegistry.merge` snapshots back in — the mechanism the
parallel backend uses to fold worker-process metrics into the parent
session so a ``--jobs N`` run reports one coherent total (bit-equal to
the serial totals, since merging counters is addition).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry"]

_GAUGE_MODES = ("last", "max", "min")

# One process-wide lock for every metric mutation.  ``value += n`` is
# NOT atomic in CPython (load / add / store can interleave between
# threads), so a multi-threaded daemon would silently drop increments —
# the merged totals would no longer equal a serial run's, breaking the
# invariant the ProcessPool drain already guarantees across processes.
# Instrumentation is phase-granular (never per-edge), so one shared
# uncontended lock costs ~100ns per update and keeps merge/snapshot
# consistent with in-flight increments.  Reentrant because merge()
# takes it and then calls counter().inc() / timer()._absorb().
_MUTATE = threading.RLock()


class Counter:
    """Monotone sum; merge = addition."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: int | float = 0):
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        with _MUTATE:
            self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """Point-in-time value; merge policy chosen by ``mode``."""

    kind = "gauge"
    __slots__ = ("value", "mode")

    def __init__(self, mode: str = "last"):
        if mode not in _GAUGE_MODES:
            raise ValueError(f"gauge mode must be one of {_GAUGE_MODES}, got {mode!r}")
        self.mode = mode
        self.value: float | None = None

    def set(self, v: float) -> None:
        with _MUTATE:
            if self.value is None:
                self.value = v
            elif self.mode == "max":
                self.value = max(self.value, v)
            elif self.mode == "min":
                self.value = min(self.value, v)
            else:
                self.value = v

    def to_dict(self) -> dict:
        return {"kind": self.kind, "mode": self.mode, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value}, mode={self.mode!r})"


class Timer:
    """Duration accumulator in seconds; merge sums.

    Keeps a bounded reservoir of observations for tail percentiles:
    every ``_stride``-th observation is sampled; when the reservoir
    reaches ``_CAP`` it is thinned 2:1 and the stride doubles.  Fully
    deterministic (no RNG), exact while ``count <= _CAP``.
    """

    kind = "timer"
    __slots__ = ("total", "count", "max", "samples", "_stride", "_skip")
    _CAP = 1024

    def __init__(self):
        self.total = 0.0
        self.count = 0
        self.max = 0.0
        self.samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, dt: float) -> None:
        with _MUTATE:
            self.total += dt
            self.count += 1
            if dt > self.max:
                self.max = dt
            if self._skip:
                self._skip -= 1
            else:
                self.samples.append(dt)
                self._skip = self._stride - 1
                if len(self.samples) >= self._CAP:
                    self.samples = self.samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the sampled observations
        (0.0 when nothing was observed)."""
        if not self.samples:
            return 0.0
        s = sorted(self.samples)
        pos = (q / 100.0) * (len(s) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "total": self.total,
            "count": self.count,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }

    def _absorb(self, entry: dict) -> None:
        """Merge a snapshot entry (totals exactly; samples thinned)."""
        with _MUTATE:
            self.total += entry["total"]
            self.count += entry["count"]
            self.max = max(self.max, entry["max"])
            incoming = entry.get("samples")
            if incoming:
                self.samples.extend(incoming)
                self._stride = max(self._stride, entry.get("stride", 1))
                while len(self.samples) >= self._CAP:
                    self.samples = self.samples[::2]
                    self._stride *= 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer(total={self.total:.6f}, count={self.count})"


class MetricsRegistry:
    """One named namespace of metrics with snapshot/merge round-trip."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        return self._metrics.get(name)

    def _fetch(self, name: str, kind: type, factory):
        with _MUTATE:
            m = self._metrics.get(name)
            if m is None:
                m = factory()
                self._metrics[name] = m
        if not isinstance(m, kind):
            raise TypeError(f"metric {name!r} is a {m.kind}, not a {kind.kind}")
        return m

    def counter(self, name: str) -> Counter:
        return self._fetch(name, Counter, Counter)

    def gauge(self, name: str, mode: str = "last") -> Gauge:
        g = self._fetch(name, Gauge, lambda: Gauge(mode))
        if g.mode != mode:
            raise ValueError(f"gauge {name!r} registered with mode {g.mode!r}, asked {mode!r}")
        return g

    def timer(self, name: str) -> Timer:
        return self._fetch(name, Timer, Timer)

    # -- serialization ------------------------------------------------------
    def snapshot(self) -> dict:
        """Kind-tagged dict form, suitable for pickling across processes
        and for :meth:`merge` on the other side.  Timer entries carry
        their sample reservoirs (dropped from :meth:`as_dict`) so
        percentiles survive the worker → parent merge."""
        with _MUTATE:
            out = {}
            for name, m in sorted(self._metrics.items()):
                d = m.to_dict()
                if isinstance(m, Timer):
                    d["samples"] = list(m.samples)
                    d["stride"] = m._stride
                out[name] = d
        return out

    def as_dict(self) -> dict:
        """Flat name -> value view for human-facing JSON reports (timers
        keep their structured form)."""
        with _MUTATE:
            out = {}
            for name, m in sorted(self._metrics.items()):
                out[name] = m.to_dict() if isinstance(m, Timer) else m.value
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges apply their mode, timers accumulate — so
        merging N worker snapshots produces exactly the totals a serial
        run would have recorded.
        """
        with _MUTATE:
            self._merge_locked(snapshot)

    def _merge_locked(self, snapshot: dict) -> None:
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    self.gauge(name, entry.get("mode", "last")).set(entry["value"])
            elif kind == "timer":
                self.timer(name)._absorb(entry)
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def clear(self) -> None:
        with _MUTATE:
            self._metrics.clear()
