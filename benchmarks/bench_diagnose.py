"""PERF — diagnosis pipeline cost and engine-agreement smoke.

Times one full ``diagnose_build`` pass (critical-path extraction,
attribution, anomaly detection, MPG2xx rules) on a token-ring build,
compares the three longest-path engines on the same build, and records
the per-stage split.  The diagnosis is meant to ride along with every
analysis — this bench keeps its cost visibly small relative to the
Monte-Carlo propagation it accompanies.

``REPRO_BENCH_DIAG_TRAVERSALS`` scales the trace (default 8).
"""

import os
import time

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import build_graph
from repro.diagnose import DiagnoseConfig, diagnose_build, extract_critical_path
from repro.mpisim import run

TRAVERSALS = int(os.environ.get("REPRO_BENCH_DIAG_TRAVERSALS", "8"))


def diag_build():
    trace = run(token_ring(TokenRingParams(traversals=TRAVERSALS)), nprocs=8, seed=0).trace
    return build_graph(trace)


def test_diagnose_pipeline(benchmark):
    build = diag_build()
    extract_critical_path(build)  # lower the compiled plan once (cached)

    report = benchmark(lambda: diagnose_build(build))

    t0 = time.perf_counter()
    per_engine = {}
    for engine in ("compiled", "incore", "graph"):
        s = time.perf_counter()
        cp = extract_critical_path(build, engine=engine)
        per_engine[engine] = time.perf_counter() - s
        assert cp.total_cost == report.critical_path.total_cost
        assert cp.edges == report.critical_path.edges
    t_engines = time.perf_counter() - t0

    rows = [
        (engine, f"{dt * 1e3:.2f} ms", f"{len(report.critical_path)} edges")
        for engine, dt in per_engine.items()
    ]
    body = table(["engine", "extract time", "path"], rows)
    summary = (
        f"diagnosis of p={build.graph.nprocs} "
        f"n={len(build.graph.nodes)} graph: "
        f"{len(report.findings)} finding(s), makespan "
        f"{report.critical_path.total_cost:,.0f} cy "
        f"(engines agree bit-for-bit)"
    )
    emit(
        "perf_diagnose",
        body + "\n" + summary,
        params={"traversals": TRAVERSALS, "nprocs": build.graph.nprocs},
        timings={f"extract_{k}_s": v for k, v in per_engine.items()}
        | {"engine_sweep_s": t_engines},
        metrics={
            "findings": len(report.findings),
            "path_edges": len(report.critical_path),
            "makespan_cy": report.critical_path.total_cost,
        },
    )


def test_diagnose_with_replicates(benchmark):
    """Replicate-delay metric via the compiled batch kernel."""
    from repro.noise import Exponential, MachineSignature

    build = diag_build()
    signature = MachineSignature(os_noise=Exponential(120.0), latency=Exponential(50.0))
    config = DiagnoseConfig(replicates=32, seed=17)
    diagnose_build(build, config, signature=signature)  # warm-up

    report = benchmark(lambda: diagnose_build(build, config, signature=signature))
    assert "replicate-delay" in report.anomalies.metrics
