"""Interconnect model for the simulated machine.

The paper's communication model needs latency (per-message), bandwidth
(per-byte) and optional per-message jitter.  This module also carries
the software overheads of the messaging layer (send/recv call costs and
the eager threshold that decides buffered-vs-synchronous blocking
sends), because those shape where time is spent inside traced events.

Per-directed-link latency overrides let experiments build asymmetric or
hierarchical topologies (e.g. one slow link) without a full routing
model — adequate for the paper's ping-style benchmark assumptions (§5.2
assumes iid symmetric links; the override is how we *violate* that
assumption in tests to show where the methodology's assumptions bind).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro._util import check_nonnegative, check_positive
from repro.noise.distributions import RandomVariable, ZERO

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters of the simulated interconnect (cycles, bytes).

    Parameters
    ----------
    latency:
        Base one-way wire latency in cycles.
    bandwidth:
        Bytes per cycle on the wire (payload time = nbytes / bandwidth).
    send_overhead / recv_overhead:
        CPU cycles spent inside the send / receive call itself.
    eager_threshold:
        Messages of at most this many bytes use the eager protocol
        (blocking send completes after local injection); larger messages
        are synchronous (sender blocks for the rendezvous round trip).
    jitter:
        Per-message random extra wire delay (sampled once per message).
    latency_by_link:
        Per-directed-link overrides of ``latency``.
    contention:
        When True, each directed link serializes payloads: a message's
        wire transfer cannot start before the previous message on the
        same link has finished serializing (the "network contention"
        parameter of the Dimemas model, §1.1).  Latency pipelines;
        payload time does not.
    """

    latency: float = 1000.0
    bandwidth: float = 1.0
    send_overhead: float = 200.0
    recv_overhead: float = 200.0
    eager_threshold: int = 8192
    jitter: RandomVariable = ZERO
    latency_by_link: Mapping[tuple[int, int], float] = field(default_factory=dict)
    contention: bool = False

    def __post_init__(self) -> None:
        check_nonnegative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_nonnegative("send_overhead", self.send_overhead)
        check_nonnegative("recv_overhead", self.recv_overhead)
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        for (src, dst), lat in self.latency_by_link.items():
            check_nonnegative(f"latency_by_link[{src}->{dst}]", lat)

    # -- queries -----------------------------------------------------------------
    def link_latency(self, src: int, dst: int) -> float:
        """One-way base latency for the directed link ``src -> dst``."""
        return self.latency_by_link.get((src, dst), self.latency)

    def payload_time(self, nbytes: int) -> float:
        """Pure serialization time of ``nbytes`` at full bandwidth."""
        return nbytes / self.bandwidth

    def sample_jitter(self, rng: np.random.Generator) -> float:
        """One per-message jitter draw (0 when no jitter configured)."""
        return max(self.jitter.sample(rng), 0.0) if self.jitter is not ZERO else 0.0

    def wire_time(self, rng: np.random.Generator, src: int, dst: int, nbytes: int) -> float:
        """Latency + payload + sampled jitter for one message
        (contention-free view; the engine layers link serialization on
        top when ``contention`` is set)."""
        return self.link_latency(src, dst) + self.payload_time(nbytes) + self.sample_jitter(rng)

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.eager_threshold

    # -- variants -----------------------------------------------------------------
    def with_latency(self, latency: float) -> "NetworkModel":
        return NetworkModel(
            latency=latency,
            bandwidth=self.bandwidth,
            send_overhead=self.send_overhead,
            recv_overhead=self.recv_overhead,
            eager_threshold=self.eager_threshold,
            jitter=self.jitter,
            latency_by_link=dict(self.latency_by_link),
            contention=self.contention,
        )

    def with_jitter(self, jitter: RandomVariable) -> "NetworkModel":
        return NetworkModel(
            latency=self.latency,
            bandwidth=self.bandwidth,
            send_overhead=self.send_overhead,
            recv_overhead=self.recv_overhead,
            eager_threshold=self.eager_threshold,
            jitter=jitter,
            latency_by_link=dict(self.latency_by_link),
            contention=self.contention,
        )

    def with_contention(self, contention: bool = True) -> "NetworkModel":
        return NetworkModel(
            latency=self.latency,
            bandwidth=self.bandwidth,
            send_overhead=self.send_overhead,
            recv_overhead=self.recv_overhead,
            eager_threshold=self.eager_threshold,
            jitter=self.jitter,
            latency_by_link=dict(self.latency_by_link),
            contention=contention,
        )
