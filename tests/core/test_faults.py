"""Fault-injection tests for the chunk scheduler (repro.testing.faults).

Every scenario here injects a *deterministic* fault into a pooled run
and asserts two things: the scheduler's reaction (retry / speculate /
restart / policy) is visible in the ``parallel.*`` metrics, and the
results remain bit-for-bit equal to a clean serial run — fault handling
may never change an answer.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.parallel import (
    ChunkTimeoutError,
    FaultPolicy,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.testing import FailItem, FaultyFn, KillWorker, SlowItem, item_key

pytestmark = pytest.mark.usefixtures("no_obs_session")


@pytest.fixture
def no_obs_session():
    obs.stop()
    yield
    obs.stop()


def _double(payload, item):
    obs.add("test.items")
    return item * 2


ITEMS = list(range(8))
SERIAL = SerialBackend().map(_double, ITEMS)


def pool(policy, jobs=2):
    # chunk_size=1: every item is its own chunk, so `on` targets one chunk.
    return ProcessPoolBackend(jobs, chunk_size=1, policy=policy)


class TestItemKey:
    def test_tuple_keys_on_first_element(self):
        assert item_key((7, "spec")) == 7
        assert item_key([3, 4]) == 3

    def test_scalar_is_its_own_key(self):
        assert item_key(5) == 5
        assert item_key(()) == ()


class TestWorkerExceptionsAreLoud:
    def test_worker_oserror_propagates(self):
        """The satellite fix: a worker-raised OSError must surface, not
        silently re-run the workload serially (the old pool.map path
        swallowed it via _POOL_UNAVAILABLE)."""
        fn = FaultyFn(_double, (FailItem(on=3, exc="OSError"),))
        with pytest.raises(OSError, match="injected fault"):
            pool(FaultPolicy(retries=0)).map(fn, ITEMS)

    def test_worker_importerror_propagates(self):
        fn = FaultyFn(_double, (FailItem(on=0, exc="ImportError"),))
        with pytest.raises(ImportError):
            pool(FaultPolicy(retries=0)).map(fn, ITEMS)

    def test_no_serial_fallback_warning_for_worker_errors(self):
        import warnings

        fn = FaultyFn(_double, (FailItem(on=3),))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(OSError):
                pool(FaultPolicy(retries=0)).map(fn, ITEMS)


class TestRetry:
    def test_transient_failure_retried_to_success(self, tmp_path):
        fn = FaultyFn(_double, (FailItem(on=3, flag=str(tmp_path / "once")),))
        with obs.observed("t") as session:
            results = pool(FaultPolicy(retries=2, backoff=0.0)).map(fn, ITEMS)
        assert results == SERIAL
        assert session.metrics.counter("parallel.chunk_retries").value >= 1

    def test_retry_exhaustion_fails(self):
        fn = FaultyFn(_double, (FailItem(on=3, exc="RuntimeError"),))
        with obs.observed("t") as session:
            with pytest.raises(RuntimeError, match="injected fault"):
                pool(FaultPolicy(retries=1, backoff=0.0)).map(fn, ITEMS)
        assert session.metrics.counter("parallel.chunk_retries").value == 1


class TestStragglerTimeout:
    def test_speculative_resubmit_wins(self, tmp_path):
        """First attempt of one chunk sleeps past the deadline; the
        speculative twin computes the same bits and wins the race."""
        fn = FaultyFn(_double, (SlowItem(on=3, seconds=8.0, flag=str(tmp_path / "slow")),))
        with obs.observed("t") as session:
            results = pool(FaultPolicy(timeout=0.5, retries=2)).map(fn, ITEMS)
        assert results == SERIAL
        assert session.metrics.counter("parallel.chunk_timeouts").value >= 1

    def test_persistent_straggler_times_out(self):
        fn = FaultyFn(_double, (SlowItem(on=3, seconds=8.0),))
        with pytest.raises(ChunkTimeoutError, match="exceeded"):
            pool(FaultPolicy(timeout=0.3, retries=0)).map(fn, ITEMS)


class TestWorkerDeath:
    def test_pool_restart_keeps_completed_chunks(self, tmp_path):
        fn = FaultyFn(_double, (KillWorker(on=3, flag=str(tmp_path / "kill")),))
        with obs.observed("t") as session:
            results = pool(FaultPolicy()).map(fn, ITEMS)
        assert results == SERIAL
        assert session.metrics.counter("parallel.pool_restarts").value == 1
        # Worker obs blobs are absorbed exactly once per completed chunk:
        # resubmitted chunks recount, stale twins and dead pools do not.
        assert session.metrics.counter("test.items").value == len(ITEMS)
        assert session.metrics.counter("parallel.chunks_completed").value == len(ITEMS)

    def test_restart_budget_exhaustion_fails(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        fn = FaultyFn(_double, (KillWorker(on=3, flag=str(tmp_path / "kill")),))
        with pytest.raises(BrokenProcessPool):
            pool(FaultPolicy(max_pool_restarts=0)).map(fn, ITEMS)


class TestFailurePolicies:
    def test_skip_returns_none_rows(self):
        fn = FaultyFn(_double, (FailItem(on=3),))
        with obs.observed("t") as session:
            results = pool(FaultPolicy(retries=0, on_failure="skip")).map(fn, ITEMS)
        assert results == [None if i == 3 else i * 2 for i in ITEMS]
        assert session.metrics.counter("parallel.chunks_skipped").value == 1

    def test_degrade_reruns_chunk_in_parent(self):
        # worker_only: the fault fires in every pool worker but not in
        # the parent, so the degrade re-run succeeds.
        fn = FaultyFn(_double, (FailItem(on=3, worker_only=True),))
        with obs.observed("t") as session:
            results = pool(FaultPolicy(retries=0, on_failure="degrade")).map(fn, ITEMS)
        assert results == SERIAL
        assert session.metrics.counter("parallel.chunks_degraded").value == 1


class TestPolicyValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            FaultPolicy(timeout=0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            FaultPolicy(retries=-1)

    def test_bad_backoff(self):
        with pytest.raises(ValueError):
            FaultPolicy(backoff=-0.1)

    def test_bad_on_failure(self):
        with pytest.raises(ValueError, match="on_failure"):
            FaultPolicy(on_failure="explode")

    def test_bad_max_pool_restarts(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_pool_restarts=-1)
