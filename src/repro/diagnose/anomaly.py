"""Anomalous-rank detection: compare each rank against its role peers.

Okita et al. (arXiv:cs/0310015) localize faulty processes by comparing
message-passing behaviour across processes; the same idea applies to
performance: a rank whose compute totals sit far
outside its peers' is where to look first.  Two subtleties make the
naive "z-score over all ranks" useless here:

* **Roles differ structurally.**  A master rank legitimately spends its
  time differently from its workers; comparing them flags the master
  every run.  Ranks are therefore grouped by *role signature* — the
  multiset of event kinds in their trace, with the root of a rooted
  collective marked distinctly — and only compared within a group (a
  rank with no peers is never flagged).
* **Small n breaks the classic z-score.**  With ``p`` peers the plain
  z-score is bounded by ``(p-1)/sqrt(p)`` (≈1.5 at p=4), so no
  threshold both fires on real outliers and stays quiet on clean runs.
  The detector instead uses a leave-one-out robust score: each rank is
  compared against the median of the *others*, scaled by their MAD
  (floored at 5% of the median so identical-by-construction simulated
  peers do not divide by zero).

A rank is flagged only when its score exceeds the threshold **and**
its total exceeds the peer median by a relative margin — both a
statistical and a practical excess.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.core.builder import BuildResult
from repro.trace.events import LOCAL_KINDS, ROOTED_COLLECTIVES

__all__ = [
    "RankProfile",
    "RankAnomaly",
    "AnomalyReport",
    "profile_ranks",
    "detect_anomalies",
    "robust_z",
]

_Z_CAP = 1e3


@dataclass(frozen=True)
class RankProfile:
    """Per-rank timing totals and the role signature used for grouping.

    ``compute`` sums the gaps between consecutive events (the implicit
    compute phases of Fig. 1); ``comm`` sums the time spent inside
    message-passing calls (INIT/FINALIZE excluded); ``signature`` is
    the sorted ``(kind, count)`` multiset identifying the rank's role.
    """

    rank: int
    compute: float
    comm: float
    signature: tuple

    def metric(self, name: str) -> float:
        if name == "compute":
            return self.compute
        if name == "comm":
            return self.comm
        raise KeyError(name)


@dataclass(frozen=True)
class RankAnomaly:
    """One flagged rank: which metric, how far out, against whom."""

    rank: int
    metric: str  # "compute" | "replicate-delay"
    value: float
    peer_median: float
    z: float
    peers: int

    @property
    def excess(self) -> float:
        """Relative excess over the peer median (1.0 = at the median)."""
        if self.peer_median <= 0:
            return float("inf") if self.value > 0 else 1.0
        return self.value / self.peer_median

    def describe(self) -> str:
        return (
            f"rank {self.rank} {self.metric} total {self.value:,.0f} cy is "
            f"{self.excess:.2f}x its {self.peers} peers' median "
            f"{self.peer_median:,.0f} cy (robust z = {min(self.z, _Z_CAP):.1f})"
        )


@dataclass(frozen=True)
class AnomalyReport:
    """All rank profiles plus the flagged anomalies, worst first."""

    profiles: tuple
    anomalies: tuple  # RankAnomaly, z-descending
    metrics: tuple  # metric names examined

    def top(self) -> RankAnomaly | None:
        return self.anomalies[0] if self.anomalies else None

    def for_rank(self, rank: int) -> tuple:
        return tuple(a for a in self.anomalies if a.rank == rank)

    def as_dict(self) -> dict:
        return {
            "metrics": list(self.metrics),
            "profiles": [
                {"rank": p.rank, "compute": p.compute, "comm": p.comm}
                for p in self.profiles
            ],
            "anomalies": [
                {
                    "rank": a.rank,
                    "metric": a.metric,
                    "value": a.value,
                    "peer_median": a.peer_median,
                    "z": min(a.z, _Z_CAP),
                    "peers": a.peers,
                }
                for a in self.anomalies
            ],
        }


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def robust_z(value: float, others: Sequence[float]) -> float:
    """Leave-one-out robust z: deviation from the peers' median scaled
    by their MAD, floored at 5% of the median's magnitude (capped so an
    all-identical peer group yields huge-but-finite scores)."""
    med = _median(others)
    mad = _median([abs(o - med) for o in others])
    scale = max(1.4826 * mad, 0.05 * abs(med), 1e-12)
    z = (value - med) / scale
    return max(min(z, _Z_CAP), -_Z_CAP)


def profile_ranks(build: BuildResult) -> tuple:
    """Per-rank :class:`RankProfile` extracted from the traced events."""
    profiles = []
    for rank, events in enumerate(build.events):
        compute = 0.0
        comm = 0.0
        counts: Counter = Counter()
        prev_end: float | None = None
        for ev in events:
            # The root of a rooted collective plays a structurally
            # different role (its interval absorbs the fan-in wait), so
            # it must not be compared against the non-root ranks.
            if ev.kind in ROOTED_COLLECTIVES and ev.root == rank:
                counts[f"{ev.kind.name}:root"] += 1
            else:
                counts[ev.kind.name] += 1
            if prev_end is not None:
                compute += max(0.0, ev.t_start - prev_end)
            prev_end = ev.t_end
            if ev.kind not in LOCAL_KINDS:
                comm += ev.duration
        profiles.append(
            RankProfile(
                rank=rank,
                compute=compute,
                comm=comm,
                signature=tuple(sorted(counts.items())),
            )
        )
    return tuple(profiles)


def detect_anomalies(
    build: BuildResult,
    z_threshold: float = 3.5,
    rel_excess: float = 1.2,
    min_peers: int = 2,
    replicate_delays: Sequence[float] | None = None,
) -> AnomalyReport:
    """Flag ranks whose totals are outliers within their role group.

    ``replicate_delays`` (per-rank mean final delays of a Monte-Carlo
    replicate batch) adds a third metric, ``replicate-delay``: a rank
    that concentrates sampled-noise delay is sensitive in a way the
    unperturbed totals cannot show.
    """
    profiles = profile_ranks(build)
    # Only compute (and replicate-delay) are *flagged*: a blocking
    # call's interval includes wait time, which is caused by peers and
    # varies legitimately with a rank's position in the dependency
    # chain — flagging comm totals blames the victims.  Comm still
    # appears in the profiles; wait-side diagnosis belongs to the
    # critical-path attribution.
    metrics = ["compute"]
    values: dict[str, list[float]] = {
        "compute": [p.compute for p in profiles],
    }
    if replicate_delays is not None:
        if len(replicate_delays) != len(profiles):
            raise ValueError("replicate_delays length does not match nprocs")
        metrics.append("replicate-delay")
        values["replicate-delay"] = [float(d) for d in replicate_delays]

    groups: dict[tuple, list[int]] = {}
    for p in profiles:
        groups.setdefault(p.signature, []).append(p.rank)

    anomalies = []
    with obs.span("diagnose.anomaly", nprocs=len(profiles)):
        for members in groups.values():
            if len(members) < min_peers + 1:
                continue  # not enough peers to judge against
            for metric in metrics:
                vals = values[metric]
                for rank in members:
                    others = [vals[r] for r in members if r != rank]
                    x = vals[rank]
                    med = _median(others)
                    z = robust_z(x, others)
                    if z >= z_threshold and x >= rel_excess * med and x > 0:
                        anomalies.append(
                            RankAnomaly(
                                rank=rank,
                                metric=metric,
                                value=x,
                                peer_median=med,
                                z=z,
                                peers=len(others),
                            )
                        )
        anomalies.sort(key=lambda a: (-a.z, a.rank, a.metric))
        if anomalies:
            obs.span_add("diagnose.anomalous_ranks", len({a.rank for a in anomalies}))
    return AnomalyReport(
        profiles=profiles, anomalies=tuple(anomalies), metrics=tuple(metrics)
    )
