"""Tests for streaming trace readers."""

import pytest

from repro.trace.events import EventKind, EventRecord, TraceMeta
from repro.trace.reader import (
    MemoryTrace,
    RankStream,
    TraceReader,
    TraceSet,
    find_trace_files,
)
from repro.trace.writer import TraceSetWriter, TraceWriter


def make_events(rank, n):
    return [
        EventRecord(rank=rank, seq=i, kind=EventKind.RECV, t_start=float(i), t_end=float(i) + 0.25)
        for i in range(n)
    ]


def write_set(tmp_path, stem, nprocs, per_rank=4, binary=False):
    with TraceSetWriter(tmp_path, stem, nprocs=nprocs, binary=binary) as ws:
        for r in range(nprocs):
            for e in make_events(r, per_rank):
                ws.record(e)
    return ws.paths()


class TestTraceReader:
    def test_streams_lazily(self, tmp_path):
        path = write_set(tmp_path, "a", 1, per_rank=10)[0]
        reader = TraceReader(path)
        it = reader.events()
        first = next(it)
        assert first.seq == 0
        assert len(list(it)) == 9

    def test_multiple_iterations_independent(self, tmp_path):
        path = write_set(tmp_path, "a", 1)[0]
        reader = TraceReader(path)
        assert list(reader.events()) == list(reader.events())

    def test_binary_sniffing(self, tmp_path):
        # A binary trace with an unusual extension is still detected.
        meta = TraceMeta(rank=0, nprocs=1)
        odd = tmp_path / "weird.dat"
        with TraceWriter(odd, meta, binary=True) as w:
            w.record_all(make_events(0, 3))
        reader = TraceReader(odd)
        assert reader.binary
        assert len(list(reader.events())) == 3


class TestRankStream:
    def test_peek_does_not_consume(self):
        events = make_events(0, 3)
        s = RankStream(0, iter(events))
        assert s.peek() is events[0]
        assert s.peek() is events[0]
        assert s.consumed == 0

    def test_advance(self):
        events = make_events(0, 2)
        s = RankStream(0, iter(events))
        assert s.advance() is events[0]
        assert s.peek() is events[1]
        assert s.advance() is events[1]
        assert s.peek() is None
        assert s.exhausted
        assert s.consumed == 2

    def test_advance_past_end_raises(self):
        s = RankStream(0, iter([]))
        assert s.exhausted
        with pytest.raises(StopIteration):
            s.advance()


class TestTraceSet:
    def test_open_by_stem(self, tmp_path):
        write_set(tmp_path, "app", 3)
        ts = TraceSet.open(tmp_path, "app")
        assert ts.nprocs == 3
        assert [len(list(ts.events_of(r))) for r in range(3)] == [4, 4, 4]

    def test_open_binary(self, tmp_path):
        write_set(tmp_path, "b", 2, binary=True)
        ts = TraceSet.open(tmp_path, "b")
        assert ts.nprocs == 2

    def test_streams(self, tmp_path):
        write_set(tmp_path, "app", 2)
        ts = TraceSet.open(tmp_path, "app")
        streams = ts.streams()
        assert [s.rank for s in streams] == [0, 1]
        assert streams[0].peek().rank == 0

    def test_load_all(self, tmp_path):
        write_set(tmp_path, "app", 2, per_rank=3)
        ts = TraceSet.open(tmp_path, "app")
        all_events = ts.load_all()
        assert [len(evs) for evs in all_events] == [3, 3]

    def test_missing_rank_rejected(self, tmp_path):
        paths = write_set(tmp_path, "app", 3)
        paths[1].unlink()
        with pytest.raises(ValueError, match="expected ranks"):
            TraceSet.open(tmp_path, "app")

    def test_nprocs_disagreement_rejected(self, tmp_path):
        write_set(tmp_path, "x", 2)
        # Forge a rank-1 file claiming nprocs=3.
        bogus = tmp_path / "x.rank0001.trace.jsonl"
        bogus.unlink()
        with TraceWriter(bogus, TraceMeta(rank=1, nprocs=3)) as w:
            w.record_all(make_events(1, 1))
        with pytest.raises(ValueError):
            TraceSet.open(tmp_path, "x")

    def test_no_files_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceSet.open(tmp_path, "nothing")

    def test_find_trace_files_sorted(self, tmp_path):
        write_set(tmp_path, "app", 12)
        files = find_trace_files(tmp_path, "app")
        assert len(files) == 12
        assert "rank0000" in files[0].name and "rank0011" in files[-1].name

    def test_stem_isolation(self, tmp_path):
        write_set(tmp_path, "one", 2)
        write_set(tmp_path, "two", 3)
        assert TraceSet.open(tmp_path, "one").nprocs == 2
        assert TraceSet.open(tmp_path, "two").nprocs == 3


class TestMemoryTrace:
    def test_basic(self):
        mt = MemoryTrace([make_events(0, 2), make_events(1, 3)])
        assert mt.nprocs == 2
        assert len(list(mt.events_of(1))) == 3
        assert mt.meta(1).rank == 1

    def test_rejects_misfiled_events(self):
        with pytest.raises(ValueError, match="filed under"):
            MemoryTrace([make_events(1, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MemoryTrace([])

    def test_load_all_copies(self):
        mt = MemoryTrace([make_events(0, 2)])
        a = mt.load_all()
        a[0].clear()
        assert len(list(mt.events_of(0))) == 2
