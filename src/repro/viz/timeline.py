"""Per-rank compute/messaging phase timelines (Fig. 1).

The paper's Fig. 1 shows a processor alternating between computation
phases (c_i) and messaging phases (m_i).  :func:`phases` extracts that
alternation from a rank's trace — messaging phases are the traced
events, compute phases the gaps between them — and
:func:`render_ascii` draws the classic swim-lane view in plain text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.trace.events import EventRecord

__all__ = ["PhaseSegment", "phases", "render_ascii"]


@dataclass(frozen=True)
class PhaseSegment:
    """One c_i or m_i segment on a rank's local timeline."""

    kind: str  # "compute" or "message"
    label: str  # c0, m0, c1, ... plus the op name for message phases
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


def phases(events: Sequence[EventRecord], min_compute: float = 0.0) -> list[PhaseSegment]:
    """Extract the alternating phase list of one rank.

    ``min_compute`` suppresses gaps shorter than the given cycles
    (clutter from back-to-back calls).
    """
    segments: list[PhaseSegment] = []
    ci = mi = 0
    prev_end: float | None = None
    for ev in events:
        if prev_end is not None and ev.t_start - prev_end > min_compute:
            segments.append(PhaseSegment("compute", f"c{ci}", prev_end, ev.t_start))
            ci += 1
        segments.append(
            PhaseSegment("message", f"m{mi}:{ev.kind.name.lower()}", ev.t_start, ev.t_end)
        )
        mi += 1
        prev_end = ev.t_end
    return segments


def render_ascii(
    trace_set,
    ranks: Sequence[int] | None = None,
    width: int = 100,
    compute_char: str = "=",
    message_char: str = "#",
) -> str:
    """Swim-lane rendering: one row per rank, ``=`` compute, ``#`` messaging.

    Each rank's lane is scaled to its own local clock span — lanes are
    **not** mutually aligned, deliberately: cross-rank timestamps are
    not comparable (§4.1).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    chosen = list(ranks) if ranks is not None else list(range(trace_set.nprocs))
    lines = []
    for rank in chosen:
        events = list(trace_set.events_of(rank))
        if not events:
            lines.append(f"r{rank:>3} | (no events)")
            continue
        t0 = events[0].t_start
        t1 = events[-1].t_end
        span = max(t1 - t0, 1e-12)
        lane = [compute_char] * width
        for ev in events:
            a = int((ev.t_start - t0) / span * (width - 1))
            b = int((ev.t_end - t0) / span * (width - 1))
            for i in range(a, b + 1):
                lane[i] = message_char
        lines.append(f"r{rank:>3} |{''.join(lane)}|")
    legend = f"({compute_char} compute, {message_char} messaging; lanes use each rank's own clock)"
    return "\n".join(lines + [legend])
