"""Post-traversal analyses (§4.2, §6).

Beyond the headline number (how much longer did the run get), the paper
promises: "we also can explore how varying parameters affects not only
overall runtime, but regions within the graph where perturbations are
absorbed or fully propagated, corresponding to tolerant or highly
sensitive code."  This module delivers those analyses on in-core
traversal results:

* :func:`runtime_impact` — per-rank delay, relative slowdown, makespan;
* :func:`critical_path` — backtrack the binding max() chain from the
  most-delayed finalize and attribute its delay to perturbation classes
  (OS noise vs latency vs bandwidth vs collective fan-in);
* :func:`absorption_map` — per rank and per event, whether the event's
  completion was determined by the local path (perturbation *absorbed*)
  or by an incoming message edge (*propagated*), plus per-edge slack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import BuildResult
from repro.core.graph import DeltaKind, EdgeKind, Phase
from repro.core.traversal import TraversalResult

__all__ = [
    "RuntimeImpact",
    "runtime_impact",
    "CriticalPath",
    "critical_path",
    "AbsorptionMap",
    "absorption_map",
    "DelayPoint",
    "delay_timeline",
]

_EPS = 1e-9


# ---------------------------------------------------------------------------
# Runtime impact
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeImpact:
    """Per-rank and aggregate runtime change."""

    delays: tuple
    original_runtimes: tuple
    slowdowns: tuple  # delay / original runtime

    @property
    def max_delay(self) -> float:
        return max(self.delays)

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays)

    @property
    def max_slowdown(self) -> float:
        return max(self.slowdowns)

    def table(self) -> str:
        lines = [f"{'rank':>5} {'delay (cy)':>14} {'runtime (cy)':>14} {'slowdown':>9}"]
        for r, (d, t, s) in enumerate(zip(self.delays, self.original_runtimes, self.slowdowns)):
            lines.append(f"{r:>5} {d:>14.1f} {t:>14.1f} {s:>8.2%}")
        return "\n".join(lines)


def runtime_impact(build: BuildResult, result: TraversalResult) -> RuntimeImpact:
    """Summarize how the perturbation changed each rank's runtime."""
    runtimes = []
    for events in build.events:
        if events:
            runtimes.append(events[-1].t_end - events[0].t_start)
        else:
            runtimes.append(0.0)
    slowdowns = tuple(
        d / t if t > 0 else 0.0 for d, t in zip(result.final_delay, runtimes)
    )
    return RuntimeImpact(
        delays=tuple(result.final_delay),
        original_runtimes=tuple(runtimes),
        slowdowns=slowdowns,
    )


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CriticalPath:
    """The binding chain of max() decisions behind one rank's delay."""

    rank: int
    total_delay: float
    edges: tuple  # edge indices, source-to-sink order
    by_delta_kind: dict  # DeltaKind name -> summed δ_eff along the path
    by_edge_kind: dict  # "local"/"message" -> summed δ_eff
    ranks_visited: tuple
    _deltas: tuple = None  # per-edge sampled deltas (aligned with graph edges)

    def dominant_class(self) -> str:
        """Perturbation class contributing the most delay on the path."""
        if not self.by_delta_kind:
            return "none"
        return max(self.by_delta_kind, key=self.by_delta_kind.get)

    def describe(self, build: "BuildResult", limit: int = 15) -> str:
        """Hop-by-hop rendering of the binding chain's top contributors.

        Shows the ``limit`` largest-delta edges on the path in path
        order, with their endpoints and perturbation class — the "where
        exactly did the time go" view.
        """
        g = build.graph
        rows = []
        for ei in self.edges:
            e = g.edges[ei]
            delta = self._deltas[ei] if self._deltas is not None else float("nan")
            if abs(delta) <= _EPS:
                continue
            src, dst = g.nodes[e.src], g.nodes[e.dst]

            def describe_node(n):
                if n.is_virtual:
                    return n.label
                return f"r{n.rank}#{n.seq}.{'S' if n.phase == Phase.START else 'E'} {n.kind.name}"

            rows.append((delta, describe_node(src), describe_node(dst), e))
        rows.sort(key=lambda r: -r[0])
        lines = [
            f"critical path of rank {self.rank}: {self.total_delay:,.0f} cy over "
            f"{len(self.edges)} edges (top {min(limit, len(rows))} contributors)"
        ]
        for delta, src, dst, e in rows[:limit]:
            kind = DeltaKind(e.delta.kind).name
            lines.append(f"  {delta:>12,.1f} cy  {kind:<12} {src} -> {dst}")
        return "\n".join(lines)


def critical_path(
    build: BuildResult, result: TraversalResult, rank: int | None = None
) -> CriticalPath:
    """Backtrack the binding predecessor chain from a finalize node.

    ``rank`` defaults to the most-delayed rank.  Ties in the max() are
    broken toward the first binding in-edge, which is deterministic for
    a given build.
    """
    if result.node_delay is None or result.edge_delta is None:
        raise ValueError("critical path requires an in-core traversal result")
    g = build.graph
    D = result.node_delay
    deltas = result.edge_delta
    if rank is None:
        rank = max(range(g.nprocs), key=lambda r: result.final_delay[r])
    node = g.final_node_of(rank)

    path: list[int] = []
    ranks_seen: list[int] = []
    while True:
        ranks_seen.append(g.nodes[node].rank)
        binding = None
        for ei in g.in_edge_ids(node):
            e = g.edges[ei]
            if abs(D[e.src] + deltas[ei] - D[node]) <= _EPS:
                binding = ei
                break
        if binding is None or D[node] <= _EPS:
            break
        path.append(binding)
        node = g.edges[binding].src

    path.reverse()
    by_delta: dict[str, float] = {}
    by_kind: dict[str, float] = {"local": 0.0, "message": 0.0}
    for ei in path:
        e = g.edges[ei]
        d = deltas[ei]
        if abs(d) > _EPS:
            name = DeltaKind(e.delta.kind).name
            by_delta[name] = by_delta.get(name, 0.0) + d
            by_kind["local" if e.kind == EdgeKind.LOCAL else "message"] += d
    return CriticalPath(
        rank=rank,
        total_delay=result.final_delay[rank],
        edges=tuple(path),
        by_delta_kind=by_delta,
        by_edge_kind=by_kind,
        ranks_visited=tuple(dict.fromkeys(reversed(ranks_seen))),
        _deltas=tuple(deltas),
    )


# ---------------------------------------------------------------------------
# Absorption map (§4.2's tolerant-vs-sensitive regions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsorptionMap:
    """Where incoming message delays bound vs were absorbed.

    ``events[rank]`` is a list of ``(seq, binding)`` for every event END
    with at least one incoming message edge; ``binding`` is True when a
    message edge determined the node's delay (perturbation *propagated*)
    and False when the rank's own local path dominated (*absorbed*).
    ``slack[rank]`` sums, over absorbed message edges, how far below the
    binding path each arrived — the delay headroom of tolerant code.
    """

    events: dict
    propagated_counts: dict
    absorbed_counts: dict
    slack: dict

    def absorption_ratio(self, rank: int) -> float:
        """Fraction of message-receiving events where delay was absorbed."""
        a = self.absorbed_counts.get(rank, 0)
        p = self.propagated_counts.get(rank, 0)
        return a / (a + p) if (a + p) else 0.0

    def overall_ratio(self) -> float:
        a = sum(self.absorbed_counts.values())
        p = sum(self.propagated_counts.values())
        return a / (a + p) if (a + p) else 0.0


@dataclass(frozen=True)
class DelayPoint:
    """Accumulated delay at one event's END on a rank's timeline."""

    seq: int
    kind: str
    t_local: float
    delay: float
    increment: float  # delay growth since the previous event


def delay_timeline(build: BuildResult, result: TraversalResult, rank: int) -> list:
    """Per-event delay series of one rank (how D(t) grows along the run).

    The §4.2 sensitivity-region view at event granularity: flat stretches
    are tolerant code (delays absorbed or simply no perturbation), jumps
    mark the events where delay was injected or arrived from remote
    ranks.
    """
    if result.node_delay is None:
        raise ValueError("delay timeline requires an in-core traversal result")
    g = build.graph
    points: list[DelayPoint] = []
    prev = 0.0
    for ev in build.events[rank]:
        nid = g.node_of(rank, ev.seq, Phase.END)
        d = result.node_delay[nid]
        points.append(
            DelayPoint(
                seq=ev.seq,
                kind=ev.kind.name,
                t_local=ev.t_end,
                delay=d,
                increment=d - prev,
            )
        )
        prev = d
    return points


def absorption_map(build: BuildResult, result: TraversalResult) -> AbsorptionMap:
    """Classify every message-receiving subevent as absorbed/propagated."""
    if result.node_delay is None or result.edge_delta is None:
        raise ValueError("absorption map requires an in-core traversal result")
    g = build.graph
    D = result.node_delay
    deltas = result.edge_delta
    events: dict[int, list] = {r: [] for r in range(g.nprocs)}
    propagated: dict[int, int] = {r: 0 for r in range(g.nprocs)}
    absorbed: dict[int, int] = {r: 0 for r in range(g.nprocs)}
    slack: dict[int, float] = {r: 0.0 for r in range(g.nprocs)}

    for node in g.nodes:
        if node.is_virtual:
            continue
        ins = g.in_edge_ids(node.node_id)
        msg_edges = [ei for ei in ins if g.edges[ei].kind == EdgeKind.MESSAGE]
        if not msg_edges:
            continue
        d_node = D[node.node_id]
        best_msg = max(D[g.edges[ei].src] + deltas[ei] for ei in msg_edges)
        binding = abs(best_msg - d_node) <= _EPS and d_node > _EPS
        events[node.rank].append((node.seq, binding))
        if binding:
            propagated[node.rank] += 1
        else:
            absorbed[node.rank] += 1
            slack[node.rank] += max(0.0, d_node - best_msg)
    return AbsorptionMap(
        events=events,
        propagated_counts=propagated,
        absorbed_counts=absorbed,
        slack=slack,
    )
