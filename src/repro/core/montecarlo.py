"""Monte-Carlo perturbation analysis.

Section 5 treats every perturbation parameter as a random variable, so a
single propagation is one *sample* of the perturbed-runtime
distribution.  Repeating the traversal over independent seeds gives the
distribution itself — mean, quantiles, and the probability of exceeding
a runtime budget — which is what a procurement decision (§7) actually
needs ("will this app meet its deadline on that machine 95% of the
time?").

Deterministic per-edge sampling makes each replicate exactly
reproducible from ``(base_seed, replicate_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.checkpoint import (
    CheckpointStore,
    ShardKey,
    build_digest,
    resolve_rows,
    signature_digest,
)
from repro.core.parallel import (
    FaultPolicy,
    map_replicate_batches,
    map_replicates,
    replicate_items,
)
from repro.core.diagnostics import DiagnosticError
from repro.core.perturb import PerturbationSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.bounds import MakespanBounds

__all__ = ["DelayDistribution", "monte_carlo"]

#: Engines accepted by :func:`monte_carlo` — "auto" picks the compiled
#: plan (bit-identical to "graph", the object-graph reference engine).
ENGINES = ("auto", "compiled", "graph")


@dataclass(frozen=True)
class DelayDistribution:
    """Empirical distribution of per-rank delays over MC replicates.

    ``samples`` has shape (replicates, nprocs); ``makespan_samples`` is
    the per-replicate max over ranks (the quantity §6 reports).
    """

    samples: np.ndarray
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.samples.ndim != 2:
            raise ValueError(
                f"samples must be 2-D (replicates, nprocs), got shape {self.samples.shape}"
            )
        if self.samples.shape[0] != len(self.seeds):
            raise ValueError(
                f"samples rows ({self.samples.shape[0]}) must match "
                f"seeds ({len(self.seeds)})"
            )

    @property
    def replicates(self) -> int:
        return self.samples.shape[0]

    @property
    def nprocs(self) -> int:
        return self.samples.shape[1]

    @property
    def makespan_samples(self) -> np.ndarray:
        return self.samples.max(axis=1)

    def mean(self) -> float:
        """Expected makespan delay."""
        return float(self.makespan_samples.mean())

    def std(self) -> float:
        return float(self.makespan_samples.std())

    def quantile(self, q) -> np.ndarray:
        """Makespan-delay quantile(s)."""
        return np.quantile(self.makespan_samples, q)

    def exceedance_probability(self, budget: float) -> float:
        """P(makespan delay > budget) — the §5 tolerance question in
        probabilistic form."""
        return float(np.mean(self.makespan_samples > budget))

    def rank_mean(self) -> np.ndarray:
        """Per-rank expected delay."""
        return self.samples.mean(axis=0)

    def summary(self) -> str:
        q = self.quantile([0.05, 0.5, 0.95])
        return (
            f"{self.replicates} replicates: makespan delay "
            f"mean {self.mean():,.0f} ± {self.std():,.0f} cy, "
            f"p5/p50/p95 = {q[0]:,.0f}/{q[1]:,.0f}/{q[2]:,.0f} cy"
        )


def monte_carlo(
    build: BuildResult,
    spec: PerturbationSpec,
    replicates: int = 100,
    mode: str = "additive",
    jobs: int | None = 0,
    chunk_size: int | None = None,
    engine: str = "auto",
    policy: FaultPolicy | None = None,
    checkpoint: CheckpointStore | str | None = None,
    resume: bool = False,
    coarsen: str = "auto",
    bounds: "MakespanBounds | None" = None,
) -> DelayDistribution:
    """Propagate ``replicates`` independent perturbation samples.

    Replicate ``i`` uses seed ``spec.seed + i`` (every edge re-sampled
    independently across replicates, identically within one).

    ``jobs`` fans replicates out across worker processes
    (:mod:`repro.core.parallel`): 0 = serial, None = one per core,
    N >= 2 = a pool of N.  Results are bit-identical across backends
    because every replicate carries its own seed.

    ``engine`` selects the propagation engine: ``"compiled"`` (and the
    ``"auto"`` default) lowers the build once into a
    :class:`~repro.core.compiled.CompiledPlan` and runs all replicates
    through the replicate-batched numpy kernel, returning the
    ``(replicates, nprocs)`` sample matrix directly; ``"graph"`` is the
    per-replicate object-graph reference engine.  Both produce
    bit-identical samples.

    ``policy`` governs chunk-level timeouts/retries/failure handling in
    the pool backend (:class:`~repro.core.parallel.FaultPolicy`).  Under
    ``on_failure="skip"`` an abandoned chunk's rows come back as NaN.

    ``checkpoint`` (a directory or :class:`~repro.core.checkpoint.
    CheckpointStore`) persists one shard per replicate, keyed by
    ``(seed, signature digest, scale, mode, engine, build digest)``;
    ``resume=True`` reads existing shards first and computes only the
    missing replicates — bit-identical to an uninterrupted run, because
    every replicate is a pure function of its key.

    ``coarsen`` controls phase coarsening in the compiled engine
    (:mod:`repro.core.coarsen`): ``"auto"`` (default) coarsens large
    iterative builds, ``"on"`` forces detection, ``"off"`` disables it.
    All settings are bit-identical; when a checkpoint store is given the
    compiled plan itself is persisted there keyed by the build digest.

    ``bounds`` (a :class:`~repro.verify.bounds.MakespanBounds` from the
    static verifier) arms the runtime cross-check: every replicate's
    per-rank delay is asserted to fall inside the certified enclosure,
    and a violation raises a :class:`~repro.core.diagnostics.
    DiagnosticError` with code ``containment-violation`` — the bounds
    are exact by construction, so an escape means the static model and
    the sampler disagree and the run's statistics cannot be trusted.
    The bounds must certify the same ``scale`` and ``mode`` as this
    run (``repro-analyze --verify`` wires this up).
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    resolved = "graph" if engine == "graph" else "compiled"
    store = CheckpointStore.coerce(checkpoint)
    with obs.span("monte_carlo", replicates=replicates, mode=mode, jobs=jobs, engine=engine):
        items = replicate_items(spec, replicates)
        seeds = tuple(seed for seed, _ in items)

        def compute(indices) -> list:
            sub = [items[i] for i in indices]
            if resolved == "graph":
                return map_replicates(
                    build, sub, mode=mode, jobs=jobs, chunk_size=chunk_size, policy=policy
                )
            from repro.core.compiled import compiled_plan

            return list(
                map_replicate_batches(
                    compiled_plan(build, coarsen=coarsen, checkpoint=store),
                    spec.signature,
                    [seed for seed, _ in sub],
                    scale=spec.scale,
                    mode=mode,
                    jobs=jobs,
                    chunk_size=chunk_size,
                    policy=policy,
                )
            )

        if store is None:
            rows = compute(range(replicates))
        else:
            sig_digest = signature_digest(spec.signature)
            context = build_digest(build)
            keys = [
                ShardKey("mc", seed, sig_digest, spec.scale, mode, resolved, context)
                for seed in seeds
            ]
            rows = resolve_rows(store, keys, compute, resume=resume)
        nprocs = build.graph.nprocs
        samples = np.array(
            [row if row is not None else [np.nan] * nprocs for row in rows], dtype=float
        )
        if bounds is not None:
            bad = bounds.violations(samples)
            if bad:
                raise DiagnosticError(
                    f"replicate {bad[0]} (seed {seeds[bad[0]]}) escaped the "
                    f"certified static bounds "
                    f"[{bounds.makespan_lo:,.0f}, {bounds.makespan_hi:,.0f}] cy "
                    f"({len(bad)} of {len(seeds)} replicates outside)",
                    code="containment-violation",
                )
            obs.add("monte_carlo.bounds_checked", len(seeds))
    return DelayDistribution(samples=samples, seeds=seeds)
