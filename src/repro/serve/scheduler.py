"""Build scheduler: content-addressed cache + request coalescing.

The expensive prefix of every job is identical — load the traces, match
events, materialize the graph, lower it into a compiled plan.  The
scheduler makes that prefix run **once per distinct structure** no
matter how many requests arrive for it:

* The build key is a content digest of the trace file bytes plus the
  :class:`~repro.core.primitives.BuildConfig`, so two requests naming
  the same traces (or uploading identical bytes) coalesce even across
  daemon restarts and file renames.
* Live :class:`CacheEntry` objects (trace set + built graph) sit in a
  bounded LRU keyed by that digest.
* In-flight builds are asyncio futures: the first request for a key
  starts the build in a worker thread, every concurrent request for
  the same key awaits the *same* task — exactly one ``build_graph``
  runs (and, because :func:`repro.core.compiled.compiled_plan`
  serializes per-build compiles, exactly one plan compile follows).

All scheduler state lives on the event loop: entries and in-flight maps
are only touched from coroutines, never from worker threads, so there
are no locks to get wrong.  Only hashing, trace IO and the build itself
run in threads (``asyncio.to_thread``), which copies the caller's
context — the winning request's obs session records the build spans.
"""

from __future__ import annotations

import asyncio
import hashlib
import tempfile
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.core.builder import BuildResult, build_graph
from repro.core.checkpoint import build_digest
from repro.core.primitives import BuildConfig
from repro.serve.wire import ServeError
from repro.trace.reader import TraceSet, find_trace_files

__all__ = ["BuildCache", "CacheEntry"]


@dataclass
class CacheEntry:
    """One cached structure: the trace set, its built graph, and the
    digests that address it.  ``tempdir`` pins uploaded trace files to
    the entry's lifetime (cleaned up on eviction)."""

    key: str
    traces: TraceSet
    build: BuildResult
    digest: str
    tempdir: tempfile.TemporaryDirectory | None = None
    hits: int = field(default=0)

    def cleanup(self) -> None:
        if self.tempdir is not None:
            self.tempdir.cleanup()
            self.tempdir = None


def _resolve_traces_dir(traces: str, trace_root: str | None) -> Path:
    """Resolve a request's trace directory against the configured root.

    With a root configured every request path (absolute or relative) is
    confined under it — a daemon exposed beyond localhost must not be a
    generic file-read oracle.  Without a root, paths pass through
    (local trusted use, same as the CLI).
    """
    if trace_root is None:
        return Path(traces)
    root = Path(trace_root).resolve()
    if Path(traces).is_absolute():
        candidate = Path(traces).resolve()
    else:
        candidate = (root / traces).resolve()
    if root != candidate and root not in candidate.parents:
        raise ServeError("forbidden", f"traces dir {traces!r} is outside the served trace root")
    return candidate


def _hash_key(parts: list[bytes]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.hexdigest()[:16]


def _dir_key(directory: Path, stem: str, config: BuildConfig) -> str:
    """Content digest of a directory-backed trace set + build config."""
    paths = find_trace_files(directory, stem)
    if not paths:
        raise ServeError("input-error", f"no trace files for stem {stem!r} in {directory}")
    parts = [repr(sorted(asdict(config).items())).encode()]
    for p in paths:
        parts.append(p.name.encode())
        parts.append(p.read_bytes())
    return _hash_key(parts)


def _upload_key(upload: dict[str, str], config: BuildConfig) -> str:
    """Content digest of an uploaded trace set + build config."""
    parts = [repr(sorted(asdict(config).items())).encode()]
    for name in sorted(upload):
        parts.append(name.encode())
        parts.append(upload[name].encode())
    return _hash_key(parts)


def _build_entry(
    key: str,
    traces_dir: Path | None,
    stem: str,
    upload: dict[str, str] | None,
    config: BuildConfig,
) -> CacheEntry:
    """Thread-side body of one build: trace IO + graph construction."""
    tempdir: tempfile.TemporaryDirectory | None = None
    try:
        if upload is not None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            for name, content in upload.items():
                (Path(tempdir.name) / name).write_text(content)
            source = Path(tempdir.name)
        else:
            assert traces_dir is not None
            source = traces_dir
        try:
            traces = TraceSet.open(source, stem)
        except FileNotFoundError as exc:
            raise ServeError("input-error", str(exc)) from exc
        except (ValueError, OSError) as exc:
            raise ServeError("input-error", f"cannot load traces: {exc}") from exc
        try:
            build = build_graph(traces, config)
        except (ValueError, KeyError) as exc:
            raise ServeError("input-error", f"cannot build graph: {exc}") from exc
        return CacheEntry(
            key=key, traces=traces, build=build, digest=build_digest(build), tempdir=tempdir
        )
    except BaseException:
        if tempdir is not None:
            tempdir.cleanup()
        raise


class BuildCache:
    """Bounded LRU of live builds with in-flight coalescing.

    Every method MUST be called from the event loop; the synchronous
    sections between awaits are the atomicity mechanism (no re-entry
    without an await point).
    """

    def __init__(self, capacity: int, trace_root: str | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.trace_root = trace_root
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._inflight: dict[str, asyncio.Task[CacheEntry]] = {}
        self.builds = 0
        self.coalesced = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    async def entry_for(
        self, request: dict[str, Any], config: BuildConfig
    ) -> tuple[CacheEntry, bool]:
        """The cache entry for one validated request: ``(entry, cached)``.

        ``cached`` is True when the request found a live entry or an
        in-flight build (i.e. this request paid no build of its own).
        """
        stem: str = request["stem"]
        upload: dict[str, str] | None = request["upload"]
        traces_dir: Path | None = None
        if upload is not None:
            key = await asyncio.to_thread(_upload_key, upload, config)
        else:
            traces_dir = _resolve_traces_dir(request["traces"], self.trace_root)
            key = await asyncio.to_thread(_dir_key, traces_dir, stem, config)

        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry, True

        task = self._inflight.get(key)
        if task is not None:
            self.coalesced += 1
            entry = await asyncio.shield(task)
            return entry, True

        task = asyncio.ensure_future(
            asyncio.to_thread(_build_entry, key, traces_dir, stem, upload, config)
        )
        self._inflight[key] = task
        task.add_done_callback(lambda t: self._finish_build(key, t))
        entry = await asyncio.shield(task)
        return entry, False

    def _finish_build(self, key: str, task: "asyncio.Task[CacheEntry]") -> None:
        """Loop-side completion of one build task.

        Runs via ``add_done_callback`` so the built entry lands in the
        cache even when every requester that awaited it was cancelled
        (the shield keeps the build running; the work must not be lost).
        """
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if task.cancelled() or task.exception() is not None:
            return  # awaiting requesters surface the failure themselves
        self.builds += 1
        self._insert(key, task.result())

    def _insert(self, key: str, entry: CacheEntry) -> None:
        if key in self._entries:  # a coalesced racer inserted first
            self._entries.move_to_end(key)
            return
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.cleanup()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "builds": self.builds,
            "hits": self.hits,
            "coalesced": self.coalesced,
        }

    def clear(self) -> None:
        for entry in self._entries.values():
            entry.cleanup()
        self._entries.clear()
