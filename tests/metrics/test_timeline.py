"""Time-resolved POP metrics: window occupancy math, the
window-sum-equals-whole-run invariants, and worst-window detection."""

import numpy as np
import pytest

from repro.metrics import pop_metrics, pop_timeline, trace_frame, window_occupancy
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace


def _ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


class TestWindowOccupancy:
    def test_simple_intervals(self):
        starts = np.array([0.0, 20.0])
        lens = np.array([10.0, 10.0])
        occ = window_occupancy(starts, lens, np.array([0.0, 15.0, 30.0]))
        assert np.array_equal(occ, [10.0, 10.0])

    def test_boundary_splits_an_interval(self):
        occ = window_occupancy(
            np.array([0.0]), np.array([10.0]), np.array([0.0, 4.0, 10.0])
        )
        assert np.array_equal(occ, [4.0, 6.0])

    def test_windows_before_first_interval_are_empty(self):
        occ = window_occupancy(
            np.array([50.0]), np.array([10.0]), np.array([0.0, 25.0, 50.0, 75.0])
        )
        assert np.array_equal(occ, [0.0, 0.0, 10.0])

    def test_no_intervals(self):
        occ = window_occupancy(np.zeros(0), np.zeros(0), np.array([0.0, 1.0, 2.0]))
        assert np.array_equal(occ, [0.0, 0.0])

    def test_telescoping_sum(self):
        rng = np.random.default_rng(7)
        gaps = rng.uniform(0.0, 5.0, size=50)
        lens = rng.uniform(0.0, 3.0, size=50)
        starts = np.cumsum(gaps + lens) - lens
        bounds = np.linspace(0.0, float(starts[-1] + lens[-1]), 17)
        occ = window_occupancy(starts, lens, bounds)
        assert occ.sum() == pytest.approx(lens.sum(), rel=1e-12)


class TestPopTimeline:
    @pytest.mark.parametrize("windows", [1, 7, 16])
    def test_window_sums_reproduce_whole_run(self, ring_trace, windows):
        tl = pop_timeline(ring_trace, windows)
        assert tl.n_windows == windows
        # per-rank telescoping: window occupancies sum to the totals
        np.testing.assert_allclose(tl.useful.sum(axis=1), tl.activity.useful, rtol=1e-9)
        np.testing.assert_allclose(tl.comm.sum(axis=1), tl.activity.comm, rtol=1e-9)
        # and the boundaries span exactly [0, T]
        assert tl.boundaries[0] == 0.0
        assert tl.boundaries[-1] == pytest.approx(tl.activity.run_length)
        assert np.all(np.diff(tl.boundaries) > 0)

    def test_window_sums_on_nonblocking_trace(self, stencil_trace):
        tl = pop_timeline(stencil_trace, 13)
        np.testing.assert_allclose(tl.useful.sum(axis=1), tl.activity.useful, rtol=1e-9)
        np.testing.assert_allclose(tl.comm.sum(axis=1), tl.activity.comm, rtol=1e-9)

    def test_single_window_equals_whole_run(self, ring_trace):
        pop = pop_metrics(ring_trace)
        tl = pop_timeline(ring_trace, 1)
        assert tl.parallel_efficiency[0] == pytest.approx(
            pop.parallel_efficiency, rel=1e-9
        )
        assert tl.load_balance[0] == pytest.approx(pop.load_balance, rel=1e-9)
        assert tl.comm_efficiency[0] == pytest.approx(pop.comm_efficiency, rel=1e-9)

    def test_length_weighted_window_pe_equals_whole_pe(self, stencil_trace):
        pop = pop_metrics(stencil_trace)
        tl = pop_timeline(stencil_trace, 9)
        lengths = np.diff(tl.boundaries)
        weighted = float((tl.parallel_efficiency * lengths).sum() / lengths.sum())
        assert weighted == pytest.approx(pop.parallel_efficiency, rel=1e-9)

    def test_per_window_identity(self, ring_trace):
        tl = pop_timeline(ring_trace, 8)
        np.testing.assert_allclose(
            tl.parallel_efficiency,
            tl.load_balance * tl.comm_efficiency,
            rtol=1e-12,
        )

    def test_accepts_prebuilt_frame(self, ring_trace):
        frame = trace_frame(ring_trace)
        a = pop_timeline(ring_trace, 4)
        b = pop_timeline(frame, 4)
        np.testing.assert_array_equal(a.useful, b.useful)

    def test_invalid_window_count(self, ring_trace):
        with pytest.raises(ValueError, match="windows"):
            pop_timeline(ring_trace, 0)

    def test_worst_window_finds_injected_serial_phase(self):
        """First half: rank 0 computes while rank 1 sits in MPI (LB 0.5).
        Second half: both compute (LB 1).  The timeline must point at
        the first half; the whole-run numbers alone cannot."""
        trace = MemoryTrace(
            [
                [
                    _ev(0, 0, EventKind.INIT, 0.0, 10.0),
                    _ev(0, 1, EventKind.BARRIER, 100.0, 110.0),
                    _ev(0, 2, EventKind.FINALIZE, 200.0, 210.0),
                ],
                [
                    _ev(1, 0, EventKind.INIT, 0.0, 10.0),
                    _ev(1, 1, EventKind.RECV, 10.0, 110.0, peer=0),
                    _ev(1, 2, EventKind.FINALIZE, 200.0, 210.0),
                ],
            ],
            program="serial-phase",
        )
        tl = pop_timeline(trace, 2)
        assert tl.worst_window() == 0
        assert tl.load_balance[0] < tl.load_balance[1]
        assert tl.load_balance[1] == pytest.approx(1.0)
        wins = tl.window_dicts()
        assert [w["index"] for w in wins] == [0, 1]
        assert wins[0]["rank_useful"] == [90.0, 0.0]
        assert wins[1]["rank_useful"][0] == pytest.approx(90.0)

    def test_window_dicts_are_json_scalars(self, ring_trace):
        wins = pop_timeline(ring_trace, 3).window_dicts()
        assert len(wins) == 3
        for w in wins:
            assert isinstance(w["parallel_efficiency"], float)
            assert isinstance(w["rank_useful"], list)

    def test_empty_trace_timeline(self):
        tl = pop_timeline(MemoryTrace([[], []], program="empty"), 4)
        assert tl.n_windows == 4
        assert np.all(tl.useful == 0.0)
        assert np.all(tl.parallel_efficiency == 0.0)
        assert np.all(tl.load_balance == 1.0)
