"""Per-rank local clocks with offset skew and linear drift.

Section 4.1 of the paper is adamant that the analyzer must not compare
timestamps across processors, because real clusters have unsynchronized
clocks with unknown offsets and drifts.  To make our reproduction honest
the simulator *deliberately* writes trace timestamps through a per-rank
:class:`LocalClock`::

    local = global * (1 + drift) + offset

so any analyzer code that illegally compared cross-rank timestamps would
produce wrong answers and fail the tests.  Drift must exceed -1 so local
time remains strictly increasing in global time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng

__all__ = ["LocalClock", "random_clocks", "perfect_clocks"]


@dataclass(frozen=True)
class LocalClock:
    """Affine mapping from global virtual time to a rank's local time."""

    offset: float = 0.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ValueError(f"drift must be > -1 (got {self.drift}); clock would run backwards")

    def to_local(self, t_global: float) -> float:
        return t_global * (1.0 + self.drift) + self.offset

    def to_global(self, t_local: float) -> float:
        return (t_local - self.offset) / (1.0 + self.drift)


def perfect_clocks(nprocs: int) -> list[LocalClock]:
    """Globally synchronized clocks (for ground-truth validation runs)."""
    return [LocalClock() for _ in range(nprocs)]


def random_clocks(
    nprocs: int,
    seed: int | np.random.Generator | None = None,
    max_offset: float = 1e9,
    max_drift: float = 1e-4,
) -> list[LocalClock]:
    """Independent random skews/drifts, one clock per rank.

    Defaults give offsets up to a billion cycles and drifts up to 100
    ppm — far larger than any event interval, so cross-rank timestamp
    comparison is guaranteed to be meaningless (as intended).
    """
    rng = as_rng(seed)
    clocks = []
    for _ in range(nprocs):
        offset = rng.uniform(-max_offset, max_offset)
        drift = rng.uniform(-max_drift, max_drift)
        clocks.append(LocalClock(offset=offset, drift=drift))
    return clocks
