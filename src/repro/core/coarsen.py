"""Phase coarsening: a hierarchical two-level IR over the event graph.

Iterative applications repeat one communication phase thousands of
times, so the flat :class:`~repro.core.compiled.CompiledPlan` pays
O(events) numpy-call overhead per replicate even though only a few
dozen *distinct* node/edge shapes exist.  :func:`detect_phases` finds
the repeated phase — a maximal periodic run in every rank's subevent
chain whose repetitions are congruent subgraphs (identical topology,
edge kinds and delta specs, differing only in iteration index) — and
lowers it into a :class:`CoarseIR`:

* an **outer coarse schedule**: static *pre* levels (everything before
  the run, plus the first ``fold`` repetitions that see boundary
  structure), the supernode run itself, then static *post* levels;
* one **shared inner template** describing a single repetition: a
  symbolic level schedule whose sources are either template offsets at
  a fixed iteration lag, or absolute positions in the pre region.

Execution (see ``compiled._coarse_*``) walks the template once per
instance over a ring buffer of ``maxlag + 1`` instance frames, so all
scratch is template-sized and the per-level numpy operations amortize
over the full replicate batch — cost scales with *distinct structure*,
not event count.  Per-edge delta sampling still visits every edge
(uids differ per repetition — that is what makes replicates exact),
but it is gathered per instance chunk through the same shared draw
programs.

Everything here is *conservative*: each structural assumption is
verified vectorially against the actual arrays, and any mismatch
returns ``None`` — the caller falls back to the flat engine, which is
always correct.  A successful detection is therefore bit-identical to
flat propagation by construction: per-edge effective deltas are
computed by the same code over the same operands, and the node max
over an identical operand multiset is exact in IEEE float regardless
of schedule.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import Phase

__all__ = [
    "AUTO_MIN_NODES",
    "COARSEN_CHOICES",
    "CoarseIR",
    "MAX_LAG",
    "MIN_REPEATS",
    "detect_phases",
]

COARSEN_CHOICES = ("auto", "on", "off")

#: Minimum repetitions of a phase before coarsening pays for itself.
MIN_REPEATS = 4
#: Maximum iteration lag a template edge may span (ring-buffer depth).
MAX_LAG = 4
#: Longest per-rank chain period considered by the periodicity scan.
MAX_PERIOD = 64
#: ``--coarsen auto``: only graphs at least this large attempt detection.
AUTO_MIN_NODES = 50_000

_PENDING = -2  # virtual node not yet assigned to an instance
_STATIC = -1


class _SLevel:
    """One static (pre or post) level, in absolute scratch positions.

    ``ecol`` indexes the static-edge effective-delta column axis (the
    order of ``CoarseIR.static_eids``).
    """

    __slots__ = ("dst", "src", "ecol", "segs", "single")

    def __init__(self, dst, src, ecol, segs, single):
        self.dst = dst
        self.src = src
        self.ecol = ecol
        self.segs = segs
        self.single = single

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


class _TLevel:
    """One symbolic template level.

    ``src_lag[j]`` is the iteration lag of in-edge j (0 = same
    instance), or -1 for a static source; ``src_ref[j]`` is the source
    template offset (lagged) or its absolute pre-region scratch
    position (static).  ``ecol`` indexes the per-instance template edge
    axis ``[0, n_te)``.
    """

    __slots__ = ("dst", "src_lag", "src_ref", "ecol", "segs", "single")

    def __init__(self, dst, src_lag, src_ref, ecol, segs, single):
        self.dst = dst
        self.src_lag = src_lag
        self.src_ref = src_ref
        self.ecol = ecol
        self.segs = segs
        self.single = single

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


class CoarseIR:
    """The two-level plan: coarse outer schedule + one inner template.

    Scratch layout (one float row per replicate, width ``W``)::

        [0, n_pre)                      pre-region node values
        [ring_base, ring_base + L*n_t)  ring of L instance frames
        [post_base, post_base + n_post) post-region node values
        [tap_base, tap_base + n_taps)   template values kept past the ring

    Instance ``i`` (0-based over all ``m`` repetitions) lives in ring
    frame ``i % L``.  The first ``fold`` instances are folded into the
    pre region (they see boundary structure) and their values are
    copied into their ring frames before the templated run starts, so
    instance ``fold`` onward can read sources at any lag ≤ ``fold``.
    """

    def __init__(self) -> None:
        # Shape of the run
        self.m = 0  # total repetitions (incl. folded)
        self.fold = 0  # leading repetitions folded into the pre region
        self.m_run = 0  # templated repetitions = m - fold
        self.n_t = 0  # nodes per instance
        self.n_te = 0  # in-edges per templated instance
        self.L = 0  # ring depth = fold + 1
        # Scratch layout
        self.n_pre = 0
        self.n_post = 0
        self.n_taps = 0
        self.ring_base = 0
        self.post_base = 0
        self.tap_base = 0
        self.W = 0
        # Node / edge id maps
        self.run_node_ids = np.empty((0, 0), dtype=np.int64)  # (m, n_t)
        self.run_edge_ids = np.empty((0, 0), dtype=np.int64)  # (m_run, n_te)
        self.static_eids = np.empty(0, dtype=np.int64)
        self.pre_node_ids = np.empty(0, dtype=np.int64)
        self.post_node_ids = np.empty(0, dtype=np.int64)
        # Schedules
        self.pre_levels: list[_SLevel] = []
        self.post_levels: list[_SLevel] = []
        self.tmpl_levels: list[_TLevel] = []
        self.zero_offs = np.empty(0, dtype=np.int64)  # offsets never written
        self.fold_src_pos = np.empty((0, 0), dtype=np.int64)  # (fold, n_t) pre positions
        # Taps: values copied out of ring frames for post levels / finals
        self.tap_inst = np.empty(0, dtype=np.int64)
        self.tap_off = np.empty(0, dtype=np.int64)
        self.final_pos = np.empty(0, dtype=np.int64)  # (nprocs,) scratch pos or -1


def _periodic_run(codes: np.ndarray, min_repeats: int) -> tuple[int, int, int] | None:
    """Maximal periodic run ``(start, period, repeats)`` containing the
    chain midpoint, or None.  Candidate periods are distances from the
    midpoint to nearby equal codes (the true period always recurs)."""
    n = len(codes)
    if n < 2 * min_repeats:
        return None
    mid = n // 2
    stop = min(n, mid + MAX_PERIOD + 1)
    cands = np.nonzero(codes[mid + 1 : stop] == codes[mid])[0] + 1
    for p in cands.tolist():
        if mid >= n - p:
            continue
        eq = codes[: n - p] == codes[p:]
        bad = np.flatnonzero(~eq)
        left = bad[bad < mid]
        right = bad[bad >= mid]
        a = int(left.max()) + 1 if len(left) else 0
        b = int(right.min()) + p if len(right) else n
        reps = (b - a) // p
        if reps >= min_repeats:
            return a, p, reps
    return None


def _all_rows_equal(mat: np.ndarray) -> bool:
    return bool(np.all(mat == mat[-1]))


def detect_phases(
    plan,
    graph,
    topo: list[int],
    *,
    min_repeats: int = MIN_REPEATS,
    max_lag: int = MAX_LAG,
) -> CoarseIR | None:
    """Detect one repeated phase in ``plan``'s graph and lower it.

    ``plan`` is a (fully column-populated) ``CompiledPlan``; ``topo``
    the graph's topological order, reused from plan compilation.
    Returns a verified :class:`CoarseIR`, or ``None`` when the graph
    has no coarsenable run (the caller then uses the flat schedule).
    """
    n_nodes, n_edges = plan.n_nodes, plan.n_edges
    if n_nodes == 0 or plan.nprocs == 0:
        return None
    node_rank, node_seq = plan.node_rank, plan.node_seq
    node_phase, node_kind = plan.node_phase, plan.node_kind
    edge_src, edge_dst = plan.edge_src, plan.edge_dst

    # -- 1. per-rank subevent chains + periodicity scan ---------------------
    real = node_phase != int(Phase.VIRTUAL)
    ridx = np.nonzero(real)[0]
    if not len(ridx):
        return None
    order = ridx[np.lexsort((node_phase[ridx], node_seq[ridx], node_rank[ridx]))]
    ranks_sorted = node_rank[order]
    starts = np.searchsorted(ranks_sorted, np.arange(plan.nprocs + 1))
    indeg = np.bincount(edge_dst, minlength=n_nodes).astype(np.int64)
    code = (
        (node_kind.astype(np.int64) << 16)
        | (node_phase.astype(np.int64) << 8)
        | np.minimum(indeg, 255)
    )

    runs: list[tuple[np.ndarray, int, int, int]] = []
    for r in range(plan.nprocs):
        chain = order[starts[r] : starts[r + 1]]
        if not len(chain):
            return None
        found = _periodic_run(code[chain], min_repeats)
        if found is None:
            return None
        runs.append((chain, *found))
    m = min(reps for _, _, _, reps in runs)
    if m < min_repeats:
        return None

    # -- 2. instance / template-offset assignment for real nodes ------------
    pos_inst = np.full(n_nodes, _STATIC, dtype=np.int64)
    pos_inst[~real] = _PENDING
    pos_off = np.full(n_nodes, -1, dtype=np.int64)
    base = 0
    periods = []
    for chain, a, p, _ in runs:
        ids = chain[a : a + m * p]
        pos_inst[ids] = np.repeat(np.arange(m, dtype=np.int64), p)
        pos_off[ids] = np.tile(base + np.arange(p, dtype=np.int64), m)
        periods.append(p)
        base += p
    n_real_t = base

    # -- 3. propagate instances onto virtual nodes (fixpoint) ---------------
    virt_mask = ~real
    if virt_mask.any():
        touches = virt_mask[edge_src] | virt_mask[edge_dst]
        te = np.nonzero(touches)[0]
        v_ends = []
        o_ends = []
        sm = virt_mask[edge_src[te]]
        dm = virt_mask[edge_dst[te]]
        v_ends.append(edge_src[te[sm]])
        o_ends.append(edge_dst[te[sm]])
        v_ends.append(edge_dst[te[dm]])
        o_ends.append(edge_src[te[dm]])
        v_all = np.concatenate(v_ends)
        o_all = np.concatenate(o_ends)
        srt = np.argsort(v_all, kind="stable")
        v_all, o_all = v_all[srt], o_all[srt]
        v_uniq, seg_starts = np.unique(v_all, return_index=True)
        big = np.int64(1) << np.int64(60)
        for _ in range(64):
            pend = pos_inst[v_uniq] == _PENDING
            if not pend.any():
                break
            ni = pos_inst[o_all]
            known = ni != _PENDING
            lo = np.where(known, ni, big)
            hi = np.where(known, ni, -big)
            mn = np.minimum.reduceat(lo, seg_starts)
            mx = np.maximum.reduceat(hi, seg_starts)
            have = mn < big  # at least one decided neighbour
            agree = pend & have & (mn == mx) & (mn >= 0)
            disagree = pend & have & ~agree
            if not (agree.any() or disagree.any()):
                break
            pos_inst[v_uniq[agree]] = mn[agree]
            pos_inst[v_uniq[disagree]] = _STATIC
        pos_inst[pos_inst == _PENDING] = _STATIC

        # Per-instance virtual counts must match to form a template.
        virt_ids = np.nonzero(virt_mask & (pos_inst >= 0))[0]
        if len(virt_ids):
            vcnt = np.bincount(pos_inst[virt_ids], minlength=m)
            if not np.all(vcnt == vcnt[0]):
                return None
            n_virt_t = int(vcnt[0])
            vorder = virt_ids[np.lexsort((virt_ids, pos_inst[virt_ids]))]
            pos_off[vorder] = n_real_t + np.tile(
                np.arange(n_virt_t, dtype=np.int64), m
            )
        else:
            n_virt_t = 0
    else:
        n_virt_t = 0
    n_t = n_real_t + n_virt_t

    # -- 4. run node-id matrix + node congruence ---------------------------
    run_ids = np.nonzero(pos_inst >= 0)[0]
    if len(run_ids) != m * n_t:
        return None
    run_node_ids = np.full((m, n_t), -1, dtype=np.int64)
    run_node_ids[pos_inst[run_ids], pos_off[run_ids]] = run_ids
    if run_node_ids.min() < 0:
        return None
    for col in (node_kind, node_phase, node_rank):
        if not _all_rows_equal(col[run_node_ids]):
            return None

    # -- 5. edge partition + reference-row lags ----------------------------
    einst = pos_inst[edge_dst]
    sel = np.nonzero(einst >= 0)[0]
    if not len(sel):
        return None
    srt = sel[np.lexsort((sel, pos_off[edge_dst[sel]], einst[sel]))]
    cnt = np.bincount(einst[sel], minlength=m)
    n_te = int(cnt[m - 1])
    if n_te == 0:
        return None
    row_starts = np.concatenate(([0], np.cumsum(cnt)))
    ref = srt[row_starts[m - 1] :]
    ref_src = edge_src[ref]
    ref_si = pos_inst[ref_src]
    static_src = ref_si == _STATIC
    lag_ref = np.where(static_src, np.int64(-1), (m - 1) - ref_si)
    inst_cols = ~static_src
    if inst_cols.any():
        lags = lag_ref[inst_cols]
        if lags.min() < 0 or lags.max() > max_lag:
            return None
        fold = max(1, int(lags.max()))
    else:
        fold = 1
    m_run = m - fold
    if m_run < 2:
        return None
    if not np.all(cnt[fold:] == n_te):
        return None
    run_edge_ids = srt[row_starts[fold] :].reshape(m_run, n_te)

    # -- 6. edge congruence across templated rows --------------------------
    if not _all_rows_equal(pos_off[edge_dst[run_edge_ids]]):
        return None
    for col in (plan.edge_kind, plan.edge_is_local, plan.edge_nbytes):
        if not _all_rows_equal(col[run_edge_ids]):
            return None
    deltas = plan.deltas
    for field in ("rank", "src", "dst", "rounds"):
        vals = np.fromiter(
            (getattr(d, field) for d in deltas), dtype=np.int64, count=n_edges
        )
        if not _all_rows_equal(vals[run_edge_ids]):
            return None
    src_mat = edge_src[run_edge_ids]
    si_mat = pos_inst[src_mat]
    stat_mat = si_mat == _STATIC
    if not np.all(stat_mat == static_src[None, :]):
        return None
    if static_src.any() and not _all_rows_equal(src_mat[:, static_src]):
        return None
    if inst_cols.any():
        want = (fold + np.arange(m_run, dtype=np.int64))[:, None] - lag_ref[inst_cols]
        if not np.all(si_mat[:, inst_cols] == want):
            return None
        if not _all_rows_equal(pos_off[src_mat[:, inst_cols]]):
            return None

    # -- 7. static-node reachability: pre vs post --------------------------
    # after[v]: v (transitively) depends on a templated instance, so it
    # must run after the supernode.  One vectorized pass over the flat
    # level schedule (levels are already dependency-ordered).
    templated = pos_inst >= fold
    after = np.zeros(n_nodes, dtype=bool)
    for lv in plan.levels:
        contrib = templated[lv.src] | after[lv.src]
        if lv.single:
            after[lv.nodes] = contrib
        else:
            after[lv.nodes] = (
                np.maximum.reduceat(contrib.astype(np.int8), lv.segs) > 0
            )
    static_mask = pos_inst == _STATIC
    folded_mask = (pos_inst >= 0) & ~templated
    pre_mask = (static_mask & ~after) | folded_mask
    post_mask = static_mask & after

    topo_arr = np.asarray(topo, dtype=np.int64)
    pre_ids = topo_arr[pre_mask[topo_arr]]
    post_ids = topo_arr[post_mask[topo_arr]]
    n_pre, n_post = len(pre_ids), len(post_ids)

    ir = CoarseIR()
    ir.m, ir.fold, ir.m_run = m, fold, m_run
    ir.n_t, ir.n_te = n_t, n_te
    ir.L = fold + 1
    ir.n_pre, ir.n_post = n_pre, n_post
    ir.ring_base = n_pre
    ir.post_base = n_pre + ir.L * n_t
    ir.tap_base = ir.post_base + n_post
    ir.run_node_ids = run_node_ids
    ir.run_edge_ids = run_edge_ids
    ir.pre_node_ids = pre_ids
    ir.post_node_ids = post_ids

    pre_pos = np.full(n_nodes, -1, dtype=np.int64)
    pre_pos[pre_ids] = np.arange(n_pre, dtype=np.int64)
    post_pos = np.full(n_nodes, -1, dtype=np.int64)
    post_pos[post_ids] = np.arange(n_post, dtype=np.int64)

    static_eids: list[int] = []

    def build_static_levels(ids, dst_pos_of, src_pos_of):
        """Level schedule over a small static region (python-paced; the
        pre/post regions are boundary-sized, not O(events))."""
        lvl: dict[int, int] = {}
        by_level: dict[int, list[int]] = {}
        for v in ids.tolist():
            ins = graph.in_edge_ids(v)
            if not ins:
                lvl[v] = 0  # keeps its zero-initialized scratch value
                continue
            best = 0
            for ei in ins:
                s = int(edge_src[ei])
                best = max(best, lvl.get(s, 0))
            lvl[v] = best + 1
            by_level.setdefault(best + 1, []).append(v)
        levels = []
        for lk in sorted(by_level):
            dst: list[int] = []
            src: list[int] = []
            ecol: list[int] = []
            segs: list[int] = []
            for v in by_level[lk]:
                segs.append(len(ecol))
                dst.append(dst_pos_of(v))
                for ei in graph.in_edge_ids(v):
                    sp = src_pos_of(int(edge_src[ei]))
                    if sp is None:
                        return None
                    src.append(sp)
                    static_eids.append(ei)
                    ecol.append(len(static_eids) - 1)
            levels.append(
                _SLevel(
                    np.array(dst, dtype=np.int64),
                    np.array(src, dtype=np.int64),
                    np.array(ecol, dtype=np.int64),
                    np.array(segs, dtype=np.int64),
                    len(ecol) == len(dst),
                )
            )
        return levels

    # -- 8. pre levels (sources must themselves be pre) --------------------
    def pre_src(s: int):
        p = int(pre_pos[s])
        return p if p >= 0 else None

    pre_levels = build_static_levels(pre_ids, lambda v: int(pre_pos[v]), pre_src)
    if pre_levels is None:
        return None
    ir.pre_levels = pre_levels

    # -- 9. the shared template (symbolic levels from the reference row) ---
    # Relative topological order of offsets within one instance.
    topo_pos = np.empty(n_nodes, dtype=np.int64)
    topo_pos[topo_arr] = np.arange(n_nodes, dtype=np.int64)
    ref_nodes = run_node_ids[m - 1]
    off_order = np.argsort(topo_pos[ref_nodes], kind="stable")
    ref_dst_off = pos_off[edge_dst[ref]]
    ref_src_off = pos_off[ref_src]
    # Group the reference row's in-edges by destination offset.
    by_off: dict[int, list[int]] = {}
    for j, o in enumerate(ref_dst_off.tolist()):
        by_off.setdefault(o, []).append(j)
    off_lvl = np.zeros(n_t, dtype=np.int64)
    by_level_t: dict[int, list[int]] = {}
    for o in off_order.tolist():
        ins = by_off.get(o)
        if not ins:
            continue
        best = 0
        for j in ins:
            if lag_ref[j] == 0:
                so = int(ref_src_off[j])
                best = max(best, int(off_lvl[so]))
        off_lvl[o] = best + 1
        by_level_t.setdefault(best + 1, []).append(o)
    tmpl_levels = []
    for lk in sorted(by_level_t):
        dst: list[int] = []
        s_lag: list[int] = []
        s_ref: list[int] = []
        ecol: list[int] = []
        segs: list[int] = []
        for o in by_level_t[lk]:
            segs.append(len(ecol))
            dst.append(o)
            for j in by_off[o]:
                if static_src[j]:
                    sp = int(pre_pos[ref_src[j]])
                    if sp < 0:
                        return None  # template reads a non-pre static node
                    s_lag.append(-1)
                    s_ref.append(sp)
                else:
                    s_lag.append(int(lag_ref[j]))
                    s_ref.append(int(ref_src_off[j]))
                ecol.append(j)
        tmpl_levels.append(
            _TLevel(
                np.array(dst, dtype=np.int64),
                np.array(s_lag, dtype=np.int64),
                np.array(s_ref, dtype=np.int64),
                np.array(ecol, dtype=np.int64),
                np.array(segs, dtype=np.int64),
                len(ecol) == len(dst),
            )
        )
    ir.tmpl_levels = tmpl_levels
    written = np.zeros(n_t, dtype=bool)
    written[ref_dst_off] = True
    ir.zero_offs = np.nonzero(~written)[0].astype(np.int64)

    # -- 10. ring priming for the folded boundary instances ----------------
    fold_src_pos = pre_pos[run_node_ids[:fold]]
    if fold_src_pos.min(initial=0) < 0:
        return None
    ir.fold_src_pos = fold_src_pos

    # -- 11. post levels (sources: pre, post, or template taps) ------------
    tap_index: dict[tuple[int, int], int] = {}

    def tap_slot(inst: int, off: int) -> int:
        key = (inst, off)
        slot = tap_index.get(key)
        if slot is None:
            slot = len(tap_index)
            tap_index[key] = slot
        return ir.tap_base + slot

    def post_src(s: int):
        p = int(pre_pos[s])
        if p >= 0:
            return p
        if pos_inst[s] >= fold:
            return tap_slot(int(pos_inst[s]), int(pos_off[s]))
        p = int(post_pos[s])
        return ir.post_base + p if p >= 0 else None

    post_levels = build_static_levels(
        post_ids, lambda v: ir.post_base + int(post_pos[v]), post_src
    )
    if post_levels is None:
        return None
    ir.post_levels = post_levels

    # -- 12. finals + coverage ---------------------------------------------
    final_pos = np.full(plan.nprocs, -1, dtype=np.int64)
    for r in range(plan.nprocs):
        fn = int(plan.final_node[r])
        if fn < 0:
            continue
        if pre_pos[fn] >= 0:
            final_pos[r] = pre_pos[fn]
        elif pos_inst[fn] >= fold:
            final_pos[r] = tap_slot(int(pos_inst[fn]), int(pos_off[fn]))
        elif post_pos[fn] >= 0:
            final_pos[r] = ir.post_base + post_pos[fn]
        else:  # pragma: no cover - exhaustive partition
            return None
    ir.final_pos = final_pos

    if len(static_eids) + m_run * n_te != n_edges:
        return None
    ir.static_eids = np.array(static_eids, dtype=np.int64)
    if len(tap_index):
        items = sorted(tap_index.items(), key=lambda kv: kv[1])
        ir.tap_inst = np.array([k[0] for k, _ in items], dtype=np.int64)
        ir.tap_off = np.array([k[1] for k, _ in items], dtype=np.int64)
    ir.n_taps = len(tap_index)
    ir.W = ir.tap_base + ir.n_taps
    return ir
