"""ABL1 — Fig. 4 hub approximation vs explicit butterfly expansion.

§3.2: the explicit butterfly "is not space or time efficient given the
fact that we know a-priori that a single collective operation can be
considered equivalent to log(p) periods of local computation and
pairwise messaging."  This ablation quantifies both halves of that
trade: graph size / analysis time (hub wins) and prediction gap (the
models should agree within small factors).
"""

import time


from benchmarks._common import emit, table
from repro.apps import AllreduceIterParams, allreduce_iter
from repro.core import BuildConfig, PerturbationSpec, build_graph, propagate
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature


def test_abl_collective_model(benchmark):
    sig = MachineSignature(os_noise=Exponential(150.0), latency=Exponential(60.0))
    spec = PerturbationSpec(sig, seed=4)
    prog_params = AllreduceIterParams(iterations=8)

    rows = []
    bfly_build_16 = None
    timings = {}
    gaps = {}
    for p in (4, 8, 16, 32):
        trace = run(allreduce_iter(prog_params), nprocs=p, seed=0).trace

        t0 = time.perf_counter()
        hub_build = build_graph(trace, BuildConfig(collective_mode="hub"))
        hub_res = propagate(hub_build, spec)
        t_hub = time.perf_counter() - t0

        t0 = time.perf_counter()
        bfly_build = build_graph(trace, BuildConfig(collective_mode="butterfly"))
        bfly_res = propagate(bfly_build, spec)
        t_bfly = time.perf_counter() - t0
        if p == 16:
            bfly_build_16 = bfly_build

        gap = hub_res.max_delay / bfly_res.max_delay
        timings[f"hub_p{p}_s"] = t_hub
        timings[f"bfly_p{p}_s"] = t_bfly
        gaps[str(p)] = gap
        rows.append(
            [
                p,
                hub_build.graph.stats()["edges"],
                bfly_build.graph.stats()["edges"],
                f"{t_hub * 1e3:.1f}",
                f"{t_bfly * 1e3:.1f}",
                f"{hub_res.max_delay:,.0f}",
                f"{bfly_res.max_delay:,.0f}",
                f"{gap:.2f}",
            ]
        )
        # Butterfly is strictly larger; predictions within small factors.
        assert bfly_build.graph.stats()["edges"] > hub_build.graph.stats()["edges"]
        assert 0.3 < gap < 3.0

    emit(
        "abl_collective_model",
        table(
            [
                "p",
                "hub edges",
                "bfly edges",
                "hub ms",
                "bfly ms",
                "hub delay",
                "bfly delay",
                "hub/bfly",
            ],
            rows,
            widths=[4, 10, 10, 8, 8, 12, 12, 9],
        ),
        params={"procs": [4, 8, 16, 32], "iterations": 8},
        timings=timings,
        metrics={
            "hub_over_bfly_delay": gaps,
            "hub_edges_by_p": {str(r[0]): r[1] for r in rows},
            "bfly_edges_by_p": {str(r[0]): r[2] for r in rows},
        },
    )

    # Edge growth shape: hub is O(p) per collective, butterfly O(p log p).
    hub_edges = [int(r[1]) for r in rows]
    bfly_edges = [int(r[2]) for r in rows]
    assert bfly_edges[-1] / bfly_edges[0] > hub_edges[-1] / hub_edges[0]

    benchmark(propagate, bfly_build_16, spec)
