"""Wire-format tests: request validation, envelopes, error mapping.

The request schema is *closed* — unknown fields, unknown params, and
wrong types are rejected with ``bad-request`` before any work happens,
so a daemon never burns a build on a malformed job.
"""

import pytest

from repro.serve.wire import (
    ENDPOINTS,
    ERROR_CODES,
    REQUEST_SCHEMA,
    RESULT_SCHEMA,
    ServeError,
    error_envelope,
    ok_envelope,
    validate_request,
    validate_result,
)


def _minimal(**overrides):
    body = {"schema": REQUEST_SCHEMA, "traces": "traces", "stem": "app"}
    body.update(overrides)
    return body


class TestValidateRequest:
    def test_minimal_request_normalizes_all_keys(self):
        req = validate_request(_minimal(), "metrics")
        assert req["traces"] == "traces"
        assert req["stem"] == "app"
        assert req["upload"] is None
        assert req["signature"] is None
        assert req["params"] == {}
        assert req["inject"] is None

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ServeError, match="must be dict"):
            validate_request(["not", "a", "dict"], "analyze")

    def test_missing_schema_rejected(self):
        body = _minimal()
        del body["schema"]
        with pytest.raises(ServeError, match="schema"):
            validate_request(body, "analyze")

    def test_wrong_schema_tag_rejected(self):
        with pytest.raises(ServeError, match="schema"):
            validate_request(_minimal(schema="repro-serve-request/999"), "analyze")

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown"):
            validate_request(_minimal(bogus=1), "analyze")

    def test_traces_and_upload_mutually_exclusive(self):
        with pytest.raises(ServeError, match="exactly one"):
            validate_request(_minimal(upload={"a.jsonl": "{}"}), "analyze")

    def test_neither_traces_nor_upload_rejected(self):
        body = _minimal()
        del body["traces"]
        with pytest.raises(ServeError, match="exactly one"):
            validate_request(body, "analyze")

    def test_missing_stem_rejected(self):
        body = _minimal()
        del body["stem"]
        with pytest.raises(ServeError, match="stem"):
            validate_request(body, "analyze")

    def test_upload_with_path_separator_rejected(self):
        body = _minimal()
        del body["traces"]
        body["upload"] = {"../evil.jsonl": "{}"}
        with pytest.raises(ServeError, match="bare file name"):
            validate_request(body, "analyze")

    def test_upload_with_absolute_path_rejected(self):
        body = _minimal()
        del body["traces"]
        body["upload"] = {"/etc/passwd": "x"}
        with pytest.raises(ServeError, match="bare file name"):
            validate_request(body, "analyze")

    def test_unknown_param_rejected_per_endpoint(self):
        # windows is a metrics-only parameter
        with pytest.raises(ServeError, match="windows"):
            validate_request(_minimal(params={"windows": 4}), "analyze")
        validate_request(_minimal(params={"windows": 4}), "metrics")

    def test_bool_rejected_where_number_expected(self):
        with pytest.raises(ServeError, match="replicates"):
            validate_request(_minimal(params={"replicates": True}), "analyze")

    def test_wrong_param_type_rejected(self):
        with pytest.raises(ServeError, match="scale"):
            validate_request(_minimal(params={"scale": "big"}), "analyze")

    def test_scales_must_be_numbers(self):
        with pytest.raises(ServeError, match="scales"):
            validate_request(_minimal(params={"scales": [1.0, "x"]}), "sweep")
        validate_request(_minimal(params={"scales": [0.0, 1.5]}), "sweep")

    def test_bad_engine_vocabulary_rejected(self):
        with pytest.raises(ServeError, match="engine"):
            validate_request(_minimal(params={"engine": "warp-drive"}), "analyze")

    def test_bad_inject_rejected(self):
        with pytest.raises(ServeError, match="inject"):
            validate_request(_minimal(inject="segfault"), "analyze")

    def test_valid_inject_passes(self):
        req = validate_request(_minimal(inject="error"), "analyze")
        assert req["inject"] == "error"

    def test_signature_inline_dict_or_string_path(self):
        validate_request(_minimal(signature={"os_noise": {}}), "analyze")
        validate_request(_minimal(signature="sig.json"), "analyze")
        with pytest.raises(ServeError, match="signature"):
            validate_request(_minimal(signature=42), "analyze")


class TestEnvelopes:
    def test_ok_envelope_shape(self):
        env = ok_envelope("analyze", {"x": 1}, {"key": "k", "digest": "d", "cached": False})
        assert env["schema"] == RESULT_SCHEMA
        assert env["ok"] is True
        assert env["kind"] == "analyze"
        assert env["result"] == {"x": 1}
        assert env["build"]["cached"] is False
        assert validate_result(env) is env

    def test_error_envelope_shape(self):
        env = error_envelope("bad-request", "nope", "sweep")
        assert env["schema"] == RESULT_SCHEMA
        assert env["ok"] is False
        assert env["error"] == {"code": "bad-request", "message": "nope"}
        assert env["kind"] == "sweep"
        assert validate_result(env) is env

    def test_validate_result_rejects_wrong_schema(self):
        env = ok_envelope("analyze", {}, {})
        env["schema"] = "other/1"
        with pytest.raises(ServeError, match="envelope"):
            validate_result(env)

    def test_validate_result_rejects_non_dict(self):
        with pytest.raises(ServeError):
            validate_result("nope")


class TestServeError:
    def test_every_code_has_an_http_status(self):
        for code, status in ERROR_CODES.items():
            assert ServeError(code, "m").status == status
            assert 400 <= status <= 599

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown serve error code"):
            ServeError("mystery", "m")

    def test_endpoint_list_is_stable(self):
        assert ENDPOINTS == ("analyze", "sweep", "diagnose", "metrics", "verify")
