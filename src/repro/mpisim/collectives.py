"""Timing models for collective operations in the simulator.

When the last participant enters a collective, the engine computes every
rank's exit time here, using the dependency structure of a concrete
algorithm — dissemination (works for any p) for the unrooted
synchronizing collectives, binomial trees for the rooted ones.  These
are the classic O(log p)-round algorithms the paper appeals to when it
argues a collective "can be considered equivalent to log(p) periods of
local computation and pairwise messaging" (§3.2).

Every local processing segment (send/recv overhead) passes through the
rank's OS-noise model, so a single noisy rank delays everyone — the
"single slow processor induces idle time in all other processors"
behaviour the paper highlights.

All functions share a signature::

    fn(entries, root, nbytes, network, noise_delay, rngs) -> exits

where ``entries[r]`` is rank r's entry (global) time, ``noise_delay``
is ``(rank, rng, t, duration) -> extra`` and ``rngs[r]`` is rank r's
generator.  ``exits[r]`` is rank r's return time.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._util import ilog2_ceil
from repro.mpisim.network import NetworkModel
from repro.trace.events import EventKind

__all__ = ["collective_exits", "dissemination_rounds", "binomial_parent", "binomial_children"]

NoiseFn = Callable[[int, np.random.Generator, float, float], float]


def dissemination_rounds(p: int) -> int:
    """Number of rounds of the dissemination algorithm for ``p`` ranks."""
    return ilog2_ceil(p) if p > 1 else 0


def binomial_parent(v: int) -> int:
    """Parent of virtual rank ``v`` in a binomial tree rooted at 0."""
    if v == 0:
        raise ValueError("root has no parent")
    return v & (v - 1)  # clear lowest set bit


def binomial_children(v: int, p: int) -> list[int]:
    """Children of virtual rank ``v`` in a binomial tree over ``p`` ranks."""
    children = []
    bit = 1
    # v's children are v | bit for bits above v's lowest set bit boundary
    while True:
        if v & bit:
            break
        child = v | bit
        if child < p and child != v:
            children.append(child)
        bit <<= 1
        if bit >= p:
            break
    return children


def _overhead(
    base: float, rank: int, t: float, noise_delay: NoiseFn, rngs: Sequence[np.random.Generator]
) -> float:
    return base + noise_delay(rank, rngs[rank], t, base)


def _dissemination(
    entries: Sequence[float],
    payload_per_round: Callable[[int], int],
    network: NetworkModel,
    noise_delay: NoiseFn,
    rngs: Sequence[np.random.Generator],
    net_rng: np.random.Generator,
) -> list[float]:
    """Dissemination pattern: round k, rank r sends to (r+2^k) mod p and
    receives from (r-2^k) mod p.  Correct for any p."""
    p = len(entries)
    busy = list(entries)
    if p == 1:
        return busy
    for k in range(dissemination_rounds(p)):
        step = 1 << k
        nbytes = payload_per_round(k)
        send_done = []
        arrivals = []
        for r in range(p):
            s_end = busy[r] + _overhead(network.send_overhead, r, busy[r], noise_delay, rngs)
            dstr = (r + step) % p
            arrivals.append(s_end + network.wire_time(net_rng, r, dstr, nbytes))
            send_done.append(s_end)
        new_busy = []
        for r in range(p):
            src = (r - step) % p
            t_in = max(send_done[r], arrivals[src])
            new_busy.append(
                t_in + _overhead(network.recv_overhead, r, t_in, noise_delay, rngs)
            )
        busy = new_busy
    return busy


def _binomial_down(
    entries: Sequence[float],
    root: int,
    payload: Callable[[int], int],
    network: NetworkModel,
    noise_delay: NoiseFn,
    rngs: Sequence[np.random.Generator],
    net_rng: np.random.Generator,
) -> list[float]:
    """Root-to-leaves binomial tree (bcast/scatter).

    ``payload(child_virtual)`` gives bytes sent to the subtree rooted at
    that child (scatter sends the whole subtree's data; bcast sends the
    full buffer each hop).
    """
    p = len(entries)
    to_actual = lambda v: (v + root) % p
    busy = [None] * p  # virtual-rank indexed "has data & free at" time
    busy[0] = entries[root]
    exits = [None] * p
    # Process virtual ranks in increasing order: parents always before children.
    for v in range(p):
        if busy[v] is None:
            raise RuntimeError("binomial order violated")  # pragma: no cover
        a = to_actual(v)
        for child in binomial_children(v, p):
            s_end = busy[v] + _overhead(network.send_overhead, a, busy[v], noise_delay, rngs)
            ca = to_actual(child)
            arrival = s_end + network.wire_time(net_rng, a, ca, payload(child))
            t_in = max(arrival, entries[ca])
            busy[child] = t_in + _overhead(network.recv_overhead, ca, t_in, noise_delay, rngs)
            busy[v] = s_end
        exits[a] = busy[v]
    return exits


def _binomial_up(
    entries: Sequence[float],
    root: int,
    payload: Callable[[int], int],
    network: NetworkModel,
    noise_delay: NoiseFn,
    rngs: Sequence[np.random.Generator],
    net_rng: np.random.Generator,
) -> list[float]:
    """Leaves-to-root binomial tree (reduce/gather).

    ``payload(child_virtual)`` gives bytes the child sends up (gather
    sends its whole received subtree; reduce sends a fixed buffer).
    """
    p = len(entries)
    to_actual = lambda v: (v + root) % p
    busy = [entries[to_actual(v)] for v in range(p)]
    exits = [None] * p
    # Children complete before parents consume them: descending order works
    # because parent(v) < v in the binomial tree.
    for v in range(p - 1, -1, -1):
        a = to_actual(v)
        if v != 0:
            parent = binomial_parent(v)
            pa = to_actual(parent)
            s_end = busy[v] + _overhead(network.send_overhead, a, busy[v], noise_delay, rngs)
            arrival = s_end + network.wire_time(net_rng, a, pa, payload(v))
            t_in = max(arrival, busy[parent])
            busy[parent] = t_in + _overhead(network.recv_overhead, pa, t_in, noise_delay, rngs)
            busy[v] = s_end
        exits[a] = busy[v]
    return exits


def collective_exits(
    kind: EventKind,
    entries: Sequence[float],
    root: int,
    nbytes: int,
    network: NetworkModel,
    noise_delay: NoiseFn,
    rngs: Sequence[np.random.Generator],
    net_rng: np.random.Generator,
) -> list[float]:
    """Exit times for one collective instance (dispatch by kind)."""
    p = len(entries)
    if p == 1:
        return [e + network.send_overhead for e in entries]

    if kind == EventKind.BARRIER:
        return _dissemination(entries, lambda k: 0, network, noise_delay, rngs, net_rng)
    if kind == EventKind.ALLREDUCE:
        return _dissemination(entries, lambda k: nbytes, network, noise_delay, rngs, net_rng)
    if kind == EventKind.ALLGATHER:
        # Round k moves 2^k blocks of nbytes (capped at p blocks total).
        return _dissemination(
            entries,
            lambda k: min(1 << k, p) * nbytes,
            network,
            noise_delay,
            rngs,
            net_rng,
        )
    if kind == EventKind.ALLTOALL:
        # Model as log-rounds moving ~p/2 blocks per round (Bruck-style).
        return _dissemination(
            entries,
            lambda k: max(p // 2, 1) * nbytes,
            network,
            noise_delay,
            rngs,
            net_rng,
        )
    if kind == EventKind.BCAST:
        return _binomial_down(
            entries, root, lambda child: nbytes, network, noise_delay, rngs, net_rng
        )
    if kind == EventKind.SCATTER:

        def subtree(child: int) -> int:
            # Child v owns virtual ranks [v, v + lowbit(v)) — lowbit = subtree size.
            return (child & -child) * nbytes

        return _binomial_down(entries, root, subtree, network, noise_delay, rngs, net_rng)
    if kind == EventKind.REDUCE:
        return _binomial_up(
            entries, root, lambda child: nbytes, network, noise_delay, rngs, net_rng
        )
    if kind == EventKind.GATHER:

        def subtree_up(child: int) -> int:
            return (child & -child) * nbytes

        return _binomial_up(entries, root, subtree_up, network, noise_delay, rngs, net_rng)
    if kind == EventKind.SCAN:
        # Inclusive prefix: a pipeline chain 0 -> 1 -> ... -> p-1; rank r
        # forwards its running partial to r+1 once it holds prefixes 0..r.
        busy = list(entries)
        for r in range(1, p):
            src = r - 1
            s_end = busy[src] + _overhead(network.send_overhead, src, busy[src], noise_delay, rngs)
            arrival = s_end + network.wire_time(net_rng, src, r, nbytes)
            t_in = max(arrival, busy[r])
            busy[r] = t_in + _overhead(network.recv_overhead, r, t_in, noise_delay, rngs)
        return busy
    if kind == EventKind.REDUCE_SCATTER:
        # Recursive-halving timing: log rounds with shrinking payloads.
        return _dissemination(
            entries,
            lambda k: max(p >> (k + 1), 1) * nbytes,
            network,
            noise_delay,
            rngs,
            net_rng,
        )
    raise ValueError(f"{kind.name} is not a collective")
