"""Property test: replay identity over random valid runs.

For ANY program the simulator can run, replaying its trace under the
generating machine's parameters must reproduce the original per-rank
timings exactly — the strongest possible check that the replay
semantics mirror the engine's protocol rules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ReplayParams, replay
from repro.mpisim import Machine, NetworkModel, run

from tests.conftest import plan_program

NET = NetworkModel(
    latency=900.0, bandwidth=2.0, send_overhead=150.0, recv_overhead=150.0, eager_threshold=4096
)
PARAMS = ReplayParams(
    latency=900.0, bandwidth=2.0, send_overhead=150.0, recv_overhead=150.0, eager_threshold=4096
)

_round = st.one_of(
    st.tuples(st.just("compute"), st.integers(100, 5000)),
    st.tuples(st.just("ring"), st.integers(0, 20_000)),
    st.tuples(st.just("xchg"), st.integers(0, 20_000)),
    st.tuples(st.just("nb"), st.integers(0, 20_000)),
    st.tuples(st.just("allreduce"), st.integers(0, 256)),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("bcast"), st.integers(0, 7), st.integers(0, 256)),
    st.tuples(st.just("reduce"), st.integers(0, 7), st.integers(0, 256)),
    st.tuples(st.just("scan"), st.integers(0, 256)),
    st.tuples(st.just("rscatter"), st.integers(0, 256)),
)


@given(plan=st.lists(_round, min_size=1, max_size=5), p=st.integers(2, 5))
@settings(max_examples=30, deadline=None)
def test_replay_identity_property(plan, p):
    machine = Machine(nprocs=p, network=NET)
    res = run(plan_program(plan), machine=machine, seed=0)
    rp = replay(res.trace, PARAMS)
    assert rp.makespan == pytest.approx(rp.original_makespan, rel=1e-9, abs=1e-6)
    for a, b in zip(rp.finish_times, rp.original_finish_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-6)


@given(
    plan=st.lists(_round, min_size=1, max_size=4),
    p=st.integers(2, 4),
    lat_scale=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=15, deadline=None)
def test_replay_faster_network_never_slower(plan, p, lat_scale):
    """What-if monotonicity: reducing latency (and raising bandwidth)
    can never make the replayed run slower."""
    machine = Machine(nprocs=p, network=NET)
    trace = run(plan_program(plan), machine=machine, seed=0).trace
    baseline = replay(trace, PARAMS)
    faster = replay(
        trace,
        ReplayParams(
            latency=PARAMS.latency * lat_scale,
            bandwidth=PARAMS.bandwidth / lat_scale,
            send_overhead=PARAMS.send_overhead,
            recv_overhead=PARAMS.recv_overhead,
            eager_threshold=PARAMS.eager_threshold,
        ),
    )
    assert faster.makespan <= baseline.makespan + 1e-6
