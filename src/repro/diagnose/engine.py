"""Diagnosis engine: path + attribution + anomalies → a lint-shaped report.

:func:`diagnose_build` runs the three analysis stages over an existing
:class:`~repro.core.builder.BuildResult`, hands the results to the
MPG2xx rule pack, and finalizes a :class:`DiagnosisReport` — a
:class:`~repro.lint.engine.LintReport` subclass the existing text /
JSON / SARIF reporters render unchanged, with the structured analysis
artifacts riding along for programmatic consumers.
:func:`diagnose_run` is the traces-in convenience wrapper.

The report is deterministic: the critical path is bit-identical across
engines, the anomaly detector is pure arithmetic over the traces, and
replicate delays reuse the exact Monte-Carlo seed schedule
(``seed + i``) through the compiled batch kernel — so CI can gate on
the SARIF output without flakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro import obs
from repro.core.builder import BuildResult, build_graph
from repro.core.coarsen import COARSEN_CHOICES
from repro.core.compiled import compiled_plan
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.traversal import MODES
from repro.diagnose.anomaly import AnomalyReport, detect_anomalies
from repro.diagnose.attribution import Attribution, attribute_path
from repro.diagnose.path import ENGINES, CriticalPathExtract, extract_critical_path
from repro.lint.engine import LintReport
from repro.lint.model import Finding, LintConfig
from repro.lint.registry import all_rules, run_rule
from repro.lint.report import render_text, report_to_dict
from repro.noise.signature import MachineSignature
from repro.trace.reader import TraceSource

__all__ = [
    "DiagnoseConfig",
    "DiagnoseContext",
    "DiagnosisReport",
    "diagnose_build",
    "diagnose_run",
    "diagnosis_to_dict",
    "render_diagnosis_text",
]


@dataclass(frozen=True)
class DiagnoseConfig:
    """Tuning knobs of one diagnosis pass.

    ``engine`` picks the longest-path kernel (result-identical;
    ``auto`` = compiled).  ``replicates`` > 0 adds the Monte-Carlo
    replicate-delay metric, which needs a machine signature and reuses
    the standard ``seed + i`` replicate schedule.  The rule thresholds
    are deliberately conservative — see :mod:`repro.diagnose.rules`.
    ``lint`` carries the shared rule mechanics (disables, severity
    overrides, emission caps) for the MPG2xx pack.  ``coarsen`` controls
    phase coarsening in the compiled replicate kernel
    (``"auto"``/``"on"``/``"off"``, see :mod:`repro.core.coarsen`) —
    the replicate delays are identical under every setting.
    """

    engine: str = "auto"
    coarsen: str = "auto"
    replicates: int = 0
    seed: int = 0
    scale: float = 1.0
    mode: str = "additive"
    z_threshold: float = 3.5
    rel_excess: float = 1.2
    min_peers: int = 2
    bottleneck_rank_share: float = 0.95
    serialization_margin: float = 0.8
    bottleneck_primitive_share: float = 0.6
    imbalance_ratio: float = 2.0
    top_edges: int = 10
    lint: LintConfig = field(default_factory=LintConfig)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.coarsen not in COARSEN_CHOICES:
            raise ValueError(
                f"coarsen must be one of {COARSEN_CHOICES}, got {self.coarsen!r}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.replicates < 0:
            raise ValueError("replicates must be >= 0")
        if self.z_threshold <= 0 or self.rel_excess < 1.0:
            raise ValueError("z_threshold must be > 0 and rel_excess >= 1.0")
        if not 0.0 < self.bottleneck_rank_share <= 1.0:
            raise ValueError("bottleneck_rank_share must be in (0, 1]")
        if not 0.0 < self.serialization_margin <= 1.0:
            raise ValueError("serialization_margin must be in (0, 1]")
        if not 0.0 < self.bottleneck_primitive_share <= 1.0:
            raise ValueError("bottleneck_primitive_share must be in (0, 1]")
        if self.imbalance_ratio < 1.0:
            raise ValueError("imbalance_ratio must be >= 1.0")


class DiagnoseContext:
    """What an MPG2xx rule may inspect: the build plus the three
    analysis artifacts, and the active :class:`DiagnoseConfig`."""

    def __init__(
        self,
        build: BuildResult,
        cp: CriticalPathExtract,
        attribution: Attribution,
        anomalies: AnomalyReport,
        config: DiagnoseConfig,
        trace_set: TraceSource | None = None,
    ) -> None:
        self.build = build
        self.cp = cp
        self.attribution = attribution
        self.anomalies = anomalies
        self.config = config
        self.trace_set = trace_set

    @cached_property
    def paths(self) -> list:
        """Per-rank trace file paths (None for in-memory traces)."""
        readers = getattr(self.trace_set, "readers", None)
        if readers:
            return [str(r.path) for r in readers]
        return [None] * self.build.graph.nprocs

    def path_of(self, rank: int | None) -> str | None:
        if rank is None or not 0 <= rank < len(self.paths):
            return None
        return self.paths[rank]


@dataclass
class DiagnosisReport(LintReport):
    """A lint report plus the structured diagnosis artifacts."""

    critical_path: CriticalPathExtract | None = None
    attribution: Attribution | None = None
    anomalies: AnomalyReport | None = None
    replicates: int = 0


def _replicate_delays(
    build: BuildResult, config: DiagnoseConfig, signature: MachineSignature
):
    """Per-rank mean final delay over the Monte-Carlo replicate batch,
    using the exact ``seed + i`` schedule of ``replicate_items``."""
    spec = PerturbationSpec(signature, seed=config.seed, scale=config.scale)
    plan = compiled_plan(build, coarsen=config.coarsen)
    seeds = [config.seed + i for i in range(config.replicates)]
    with obs.span("diagnose.replicates", replicates=config.replicates):
        batch = plan.propagate_batch(spec, seeds=seeds, mode=config.mode)
    return batch.delays.mean(axis=0)


def diagnose_build(
    build: BuildResult,
    config: DiagnoseConfig | None = None,
    signature: MachineSignature | None = None,
    trace_set: TraceSource | None = None,
) -> DiagnosisReport:
    """Diagnose an existing build: critical path, attribution, anomaly
    detection, then the MPG2xx rule pack.

    ``signature`` is only needed when ``config.replicates`` > 0 (the
    replicate-delay metric samples perturbations from it).
    """
    config = config or DiagnoseConfig()
    with obs.span("diagnose", engine=config.engine):
        cp = extract_critical_path(build, engine=config.engine)
        attribution = attribute_path(build, cp, top_edges=config.top_edges)
        replicate_delays = None
        if config.replicates > 0:
            if signature is None:
                raise ValueError(
                    "replicate-delay metric needs a machine signature "
                    "(replicates > 0 without one)"
                )
            replicate_delays = _replicate_delays(build, config, signature)
        anomalies = detect_anomalies(
            build,
            z_threshold=config.z_threshold,
            rel_excess=config.rel_excess,
            min_peers=config.min_peers,
            replicate_delays=replicate_delays,
        )
        ctx = DiagnoseContext(build, cp, attribution, anomalies, config, trace_set)

        findings: list[Finding] = []
        rules_run: list[str] = []
        for r in all_rules("diagnosis"):
            if not config.lint.enabled(r):
                continue
            rules_run.append(r.id)
            findings.extend(run_rule(r, ctx, config.lint))

        ordered = sorted(
            (f.with_path(ctx.path_of(f.rank)) for f in findings),
            key=lambda f: (
                -int(f.severity),
                f.rule_id,
                f.rank if f.rank is not None else -1,
                f.seq if f.seq is not None else -1,
                f.node if f.node is not None else -1,
            ),
        )
        for f in ordered:
            obs.add(f"diagnose.findings.{f.severity.name.lower()}")
        return DiagnosisReport(
            findings=ordered,
            nprocs=build.graph.nprocs,
            event_count=sum(len(evs) for evs in build.events),
            rules_run=tuple(rules_run),
            graph_checked=True,
            critical_path=cp,
            attribution=attribution,
            anomalies=anomalies,
            replicates=config.replicates,
        )


def diagnose_run(
    trace_set: TraceSource,
    config: DiagnoseConfig | None = None,
    build_config: BuildConfig | None = None,
    signature: MachineSignature | None = None,
) -> DiagnosisReport:
    """Traces in, diagnosis report out.

    Unlike :func:`repro.lint.lint_run` this does *not* guard the graph
    build: diagnosis interprets a well-formed run, so a build failure
    propagates as its :class:`~repro.core.diagnostics.DiagnosticError`
    (run ``repro-lint`` first for malformed-trace triage).
    """
    build = build_graph(trace_set, build_config)
    return diagnose_build(build, config, signature=signature, trace_set=trace_set)


def render_diagnosis_text(report: DiagnosisReport, verbose: bool = False) -> str:
    """Attribution tables + the standard findings rendering."""
    lines = []
    cp, attr = report.critical_path, report.attribution
    if cp is not None and attr is not None:
        lines.append(
            f"critical path: {cp.total_cost:,.0f} cy over {len(cp.edges)} edges "
            f"into rank {cp.sink_rank} [engine={cp.engine}]"
        )
        lines.append(attr.table())
        if verbose and attr.top_edges:
            lines.append("top path edges:")
            for ei, cost, primitive, rank in attr.top_edges:
                lines.append(f"  {cost:>14,.1f} cy  {primitive:<12} r{rank}  edge {ei}")
    if report.replicates:
        lines.append(f"replicate-delay metric over {report.replicates} replicates")
    lines.append(render_text(report, verbose=verbose))
    return "\n".join(lines)


def diagnosis_to_dict(report: DiagnosisReport) -> dict:
    """The lint JSON document plus a ``diagnosis`` block."""
    out = report_to_dict(report)
    out["schema"] = "repro-diagnosis-report/1"
    out["diagnosis"] = {
        "critical_path": report.critical_path.as_dict() if report.critical_path else None,
        "attribution": report.attribution.as_dict() if report.attribution else None,
        "anomalies": report.anomalies.as_dict() if report.anomalies else None,
        "replicates": report.replicates,
    }
    return out
