"""Tests for the per-primitive subgraph templates (Figs. 2–4)."""

import pytest

from repro.core.graph import DeltaKind, EdgeKind, Phase
from repro.core.matching import CollectiveGroup
from repro.core.primitives import (
    BuildConfig,
    collective_edges,
    gap_edge,
    intra_event_edge,
    sub,
    transfer_edges,
)
from repro.trace.events import EventKind, EventRecord


def ev(rank, seq, kind, t0=0.0, t1=10.0, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


CFG = BuildConfig()


class TestBuildConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BuildConfig(collective_mode="star")
        with pytest.raises(ValueError):
            BuildConfig(eager_threshold=-1)

    def test_models_ack(self):
        assert BuildConfig().models_ack(0)  # paper default: always sync
        cfg = BuildConfig(eager_threshold=100)
        assert not cfg.models_ack(100)
        assert cfg.models_ack(101)


class TestIntraEdges:
    def test_send_carries_os(self):
        et = intra_event_edge(ev(0, 1, EventKind.SEND, 5.0, 12.0))
        assert et.kind == EdgeKind.LOCAL
        assert et.weight == 7.0
        assert et.delta.kind == DeltaKind.OS  # δ_os1 of Eq. 1
        assert et.delta.rank == 0

    def test_recv_pure_precedence(self):
        et = intra_event_edge(ev(0, 1, EventKind.RECV))
        assert et.delta.kind == DeltaKind.NONE  # δ_os2 rides the data path

    @pytest.mark.parametrize("kind", [EventKind.ISEND, EventKind.IRECV, EventKind.WAIT])
    def test_nonblocking_pure_precedence(self, kind):
        # Eq. 2 note: immediate-return ends are not modified locally.
        assert intra_event_edge(ev(0, 1, kind)).delta.kind == DeltaKind.NONE

    @pytest.mark.parametrize("kind", [EventKind.REDUCE, EventKind.BCAST])
    def test_rooted_collectives_carry_local_os(self, kind):
        # Paper's Reduce: "a local edge ... labeled with local operating
        # system noise".
        assert intra_event_edge(ev(0, 1, kind)).delta.kind == DeltaKind.OS

    def test_unrooted_collectives_pure(self):
        # Fig. 4: noise is sampled inside l_δ, not on the local edge.
        assert intra_event_edge(ev(0, 1, EventKind.ALLREDUCE)).delta.kind == DeltaKind.NONE


class TestGapEdges:
    def test_weight_is_gap(self):
        a = ev(0, 0, EventKind.SEND, 0.0, 10.0)
        b = ev(0, 1, EventKind.RECV, 25.0, 30.0)
        et = gap_edge(a, b)
        assert et.weight == 15.0
        assert et.delta.kind == DeltaKind.OS
        assert et.src == sub(0, 0, Phase.END)
        assert et.dst == sub(0, 1, Phase.START)

    def test_rejects_nonconsecutive(self):
        a = ev(0, 0, EventKind.SEND)
        c = ev(0, 2, EventKind.RECV, 20.0, 25.0)
        with pytest.raises(ValueError, match="consecutive"):
            gap_edge(a, c)

    def test_rejects_negative_gap(self):
        a = ev(0, 0, EventKind.SEND, 0.0, 10.0)
        b = ev(0, 1, EventKind.RECV, 5.0, 15.0)
        with pytest.raises(ValueError, match="negative"):
            gap_edge(a, b)


class TestBlockingTransfer:
    def test_fig2_shape(self):
        """Blocking pair: data edge S(send)->E(recv) + ack E(recv)->E(send)."""
        send = ev(0, 1, EventKind.SEND, peer=1, tag=0, nbytes=128)
        recv = ev(1, 2, EventKind.RECV, peer=0, tag=0, nbytes=128)
        edges = transfer_edges(send, recv, None, None, CFG, chan_index=0)
        assert len(edges) == 2
        data, ack = edges
        assert data.src == sub(0, 1, Phase.START)
        assert data.dst == sub(1, 2, Phase.END)
        assert data.kind == EdgeKind.MESSAGE
        assert data.weight == 0.0  # §6: message edges weighted zero
        assert data.delta.kind == DeltaKind.TRANSFER_OS
        assert data.delta.nbytes == 128
        assert data.delta.rank == 1  # δ_os2 belongs to the receiver
        assert ack.src == sub(1, 2, Phase.END)
        assert ack.dst == sub(0, 1, Phase.END)
        assert ack.delta.kind == DeltaKind.LATENCY

    def test_eager_suppresses_ack(self):
        cfg = BuildConfig(eager_threshold=1024)
        send = ev(0, 1, EventKind.SEND, peer=1, tag=0, nbytes=128)
        recv = ev(1, 2, EventKind.RECV, peer=0, tag=0, nbytes=128)
        edges = transfer_edges(send, recv, None, None, cfg, chan_index=0)
        assert len(edges) == 1
        assert edges[0].delta.kind == DeltaKind.TRANSFER_OS

    def test_uids_differ_per_chan_index(self):
        send = ev(0, 1, EventKind.SEND, peer=1, tag=0, nbytes=8)
        recv = ev(1, 2, EventKind.RECV, peer=0, tag=0, nbytes=8)
        a = transfer_edges(send, recv, None, None, CFG, chan_index=0)[0]
        b = transfer_edges(send, recv, None, None, CFG, chan_index=1)[0]
        assert a.delta.uid != b.delta.uid


class TestNonblockingTransfer:
    def test_fig3_shape(self):
        """Isend/irecv + waits: data lands on the receiver's wait; ack is
        a roundtrip restarting at the posted irecv."""
        isend = ev(0, 1, EventKind.ISEND, peer=1, tag=0, nbytes=64, req=0)
        irecv = ev(1, 1, EventKind.IRECV, peer=0, tag=0, nbytes=64, req=0)
        edges = transfer_edges(isend, irecv, (0, 3), (1, 4), CFG, chan_index=0)
        assert len(edges) == 2
        data, ack = edges
        assert data.dst == sub(1, 4, Phase.END)  # receiver's wait END
        assert ack.src == sub(1, 1, Phase.END)  # irecv END (posting point)
        assert ack.dst == sub(0, 3, Phase.END)  # sender's wait END
        assert ack.delta.kind == DeltaKind.ROUNDTRIP

    def test_uncompleted_isend_drops_ack(self):
        isend = ev(0, 1, EventKind.ISEND, peer=1, tag=0, nbytes=64, req=0)
        recv = ev(1, 1, EventKind.RECV, peer=0, tag=0, nbytes=64)
        edges = transfer_edges(isend, recv, None, None, CFG, chan_index=0)
        assert len(edges) == 1  # §4.3: nothing anchors the sender's delay

    def test_uncompleted_irecv_drops_data(self):
        send = ev(0, 1, EventKind.SEND, peer=1, tag=0, nbytes=64)
        irecv = ev(1, 1, EventKind.IRECV, peer=0, tag=0, nbytes=64, req=0)
        edges = transfer_edges(send, irecv, None, None, CFG, chan_index=0)
        kinds = [e.delta.kind for e in edges]
        assert DeltaKind.TRANSFER_OS not in kinds  # data dropped
        assert DeltaKind.ROUNDTRIP in kinds  # ack still anchored at posting

    def test_sendrecv_ack_restarts_at_start(self):
        """Mutual sendrecv must not create END-END cycles."""
        a = ev(
            0, 1, EventKind.SENDRECV,
            peer=1, tag=0, nbytes=32, recv_peer=1, recv_tag=0, recv_nbytes=32,
        )
        b = ev(
            1, 1, EventKind.SENDRECV,
            peer=0, tag=0, nbytes=32, recv_peer=0, recv_tag=0, recv_nbytes=32,
        )
        edges = transfer_edges(a, b, None, None, CFG, chan_index=0)
        ack = [e for e in edges if e.delta.kind == DeltaKind.ROUNDTRIP][0]
        assert ack.src == sub(1, 1, Phase.START)


def group(kind, p, root=-1, nbytes=0, ordinal=0):
    return CollectiveGroup(
        ordinal=ordinal,
        kind=kind,
        root=root,
        nbytes=nbytes,
        members=tuple((r, 3) for r in range(p)),
    )


class TestCollectiveTemplates:
    def test_fig4_allreduce_hub(self):
        edges = collective_edges(group(EventKind.ALLREDUCE, 4, nbytes=64), 4, CFG)
        fanin = [e for e in edges if e.delta.kind == DeltaKind.COLL_FANIN]
        fanout = [e for e in edges if e.delta.kind == DeltaKind.NONE]
        assert len(fanin) == 4 and len(fanout) == 4
        for e in fanin:
            assert e.dst == ("hub", 0)
            assert e.delta.rounds == 2  # ceil(log2 4)
            assert e.delta.nbytes == 64
        for e in fanout:
            assert e.src == ("hub", 0)

    def test_reduce_simplification(self):
        """Paper's three Reduce modifications: single-latency fan-in,
        unlabelled fan-out from the root's END."""
        edges = collective_edges(group(EventKind.REDUCE, 4, root=2, nbytes=8), 4, CFG)
        fanin = [e for e in edges if e.delta.kind == DeltaKind.LATENCY]
        fanout = [e for e in edges if e.delta.kind == DeltaKind.NONE]
        assert len(fanin) == 3 and len(fanout) == 3
        for e in fanin:
            assert e.dst == sub(2, 3, Phase.END)
        for e in fanout:
            assert e.src == sub(2, 3, Phase.END)

    def test_reduce_transfer_extension(self):
        cfg = BuildConfig(reduce_transfer_deltas=True)
        edges = collective_edges(group(EventKind.REDUCE, 3, root=0, nbytes=100), 3, cfg)
        fanin = [e for e in edges if e.dst == sub(0, 3, Phase.END)]
        assert all(e.delta.kind == DeltaKind.TRANSFER for e in fanin)

    def test_bcast_fanout(self):
        edges = collective_edges(group(EventKind.BCAST, 5, root=1, nbytes=16), 5, CFG)
        assert len(edges) == 4
        for e in edges:
            assert e.src == sub(1, 3, Phase.START)
            assert e.delta.kind == DeltaKind.COLL_FANIN
            assert e.delta.rounds == 3  # ceil(log2 5)

    def test_butterfly_structure(self):
        cfg = BuildConfig(collective_mode="butterfly")
        p = 4
        edges = collective_edges(group(EventKind.ALLREDUCE, p, nbytes=8), p, cfg)
        rounds = 2
        msg = [e for e in edges if e.kind == EdgeKind.MESSAGE]
        local = [e for e in edges if e.kind == EdgeKind.LOCAL]
        assert len(msg) == p * rounds  # dissemination exchange per round
        assert len(local) == p + p * rounds + p  # in + per-round OS + out

    def test_butterfly_only_for_unrooted(self):
        cfg = BuildConfig(collective_mode="butterfly")
        edges = collective_edges(group(EventKind.REDUCE, 4, root=0), 4, cfg)
        # Rooted kinds fall back to the hub-family template.
        assert all(e.delta.kind != DeltaKind.TRANSFER for e in edges)

    def test_all_uids_unique_within_collective(self):
        for mode in ("hub", "butterfly"):
            cfg = BuildConfig(collective_mode=mode)
            edges = collective_edges(group(EventKind.BARRIER, 8), 8, cfg)
            uids = [e.delta.uid for e in edges if e.delta.kind != DeltaKind.NONE]
            assert len(uids) == len(set(uids))

    def test_rejects_non_collective(self):
        with pytest.raises(ValueError):
            collective_edges(group(EventKind.SEND, 2), 2, CFG)
