"""Match-nondeterminism analysis: the known-verdict racegen scenarios,
non-overtaking and happens-before pruning, and the SENDRECV exchange
that must not read as a happens-before cycle."""

from __future__ import annotations

import pytest

from repro.apps import ALL_APPS
from repro.core import build_graph
from repro.mpisim import (
    ANY_SOURCE,
    Compute,
    Recv,
    Send,
    Sendrecv,
    run,
)
from repro.testing.racegen import (
    NPROCS,
    clean_program,
    deadlock_program,
    race_program,
)
from repro.verify import MatchAnalysis, analyze_matches


def analyze(program, nprocs=NPROCS, seed=1):
    return analyze_matches(build_graph(run(program, nprocs=nprocs, seed=seed).trace))


class TestScenarios:
    def test_race_scenario_has_divergent_races(self):
        analysis = analyze(race_program)
        assert analysis.wildcard_receives == 2
        assert len(analysis.races) == 2
        for race in analysis.races:
            assert race.recv[0] == 0  # both wildcard receives live on rank 0
            assert race.divergent  # 64B vs 4096B payloads differ
        assert analysis.deadlocks == ()

    def test_deadlock_scenario_names_the_starved_receive(self):
        analysis = analyze(deadlock_program)
        assert analysis.deadlocks
        chain = analysis.deadlocks[0]
        assert chain.recv[0] == 0
        assert chain.starved[0] == 0
        assert chain.stolen[0] == 2  # rank 2's send is the only feasible one

    def test_clean_scenario_is_benign(self):
        analysis = analyze(clean_program)
        assert analysis.wildcard_receives == 2
        assert analysis.races  # nondeterministic, but...
        assert all(not r.divergent for r in analysis.races)  # ...unobservable
        assert analysis.deadlocks == ()


class TestPruning:
    def test_pinned_receives_have_no_races(self):
        def program(me):
            if me.rank == 0:
                yield Recv(source=1, tag=0)
                yield Recv(source=2, tag=0)
            else:
                yield Send(dest=0, nbytes=64, tag=0)

        analysis = analyze(program)
        assert analysis.wildcard_receives == 0
        assert analysis.races == ()

    def test_non_overtaking_prunes_same_source_sends(self):
        # Two sends from ONE source to one wildcard pair: MPI ordering
        # pins the match, so no swap is feasible.
        def program(me):
            if me.rank == 0:
                yield Recv(source=ANY_SOURCE, tag=1)
                yield Recv(source=ANY_SOURCE, tag=1)
            elif me.rank == 1:
                yield Send(dest=0, nbytes=64, tag=1)
                yield Send(dest=0, nbytes=4096, tag=1)

        analysis = analyze(program)
        assert analysis.wildcard_receives == 2
        assert analysis.races == ()

    def test_happens_before_prunes_ordered_senders(self):
        # Rank 2 only sends after hearing from rank 0, which happens
        # after rank 1's message arrived: the alternatives are ordered,
        # not racing.
        def program(me):
            if me.rank == 0:
                yield Recv(source=ANY_SOURCE, tag=1)
                yield Send(dest=2, nbytes=8, tag=2)
                yield Recv(source=ANY_SOURCE, tag=1)
            elif me.rank == 1:
                yield Send(dest=0, nbytes=64, tag=1)
            elif me.rank == 2:
                yield Recv(source=0, tag=2)
                yield Send(dest=0, nbytes=4096, tag=1)

        analysis = analyze(program)
        assert analysis.wildcard_receives == 2
        assert analysis.races == ()


class TestSendrecv:
    def test_mutual_exchange_is_not_a_cycle(self):
        # Two ranks swap via SENDRECV: the completion of each depends on
        # the other's posting, which must NOT read as a happens-before
        # cycle (the posting precedes the completion).
        def program(me):
            other = 1 - me.rank
            yield Compute(100)
            yield Sendrecv(dest=other, source=other, send_nbytes=64)

        analysis = analyze(program, nprocs=2)
        assert isinstance(analysis, MatchAnalysis)
        assert analysis.races == ()
        assert analysis.deadlocks == ()


class TestBundledApps:
    @pytest.mark.parametrize("name", ["master_worker", "butterfly_allreduce", "random_sparse"])
    def test_wildcard_apps_have_no_divergent_races(self, name):
        factory, params_cls = ALL_APPS[name]
        params = params_cls()
        nprocs = 8 if name == "butterfly_allreduce" else 4
        analysis = analyze_matches(
            build_graph(run(factory(params), nprocs=nprocs, seed=1).trace)
        )
        assert all(not r.divergent for r in analysis.races), name
        assert analysis.deadlocks == (), name
