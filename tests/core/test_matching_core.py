"""Tests for order-based cross-rank event matching (§4.1)."""

import pytest

from repro.core.matching import MatchError, match_events
from repro.trace.events import EventKind, EventRecord


def ev(rank, seq, kind, t0=None, t1=None, **kw):
    t0 = float(seq * 10) if t0 is None else t0
    t1 = t0 + 5.0 if t1 is None else t1
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


class TestPairwise:
    def test_single_pair(self):
        per_rank = [
            [ev(0, 0, EventKind.SEND, peer=1, tag=0)],
            [ev(1, 0, EventKind.RECV, peer=0, tag=0)],
        ]
        m = match_events(per_rank)
        assert m.transfer_of[(0, 0)] == (1, 0)
        assert m.reverse_transfer_of[(1, 0)] == (0, 0)
        assert m.transfer_index[(0, 0)] == 0

    def test_fifo_on_channel(self):
        """§4.1: the n-th send matches the n-th receive on a channel."""
        per_rank = [
            [
                ev(0, 0, EventKind.SEND, peer=1, tag=0, nbytes=1),
                ev(0, 1, EventKind.SEND, peer=1, tag=0, nbytes=2),
            ],
            [
                ev(1, 0, EventKind.RECV, peer=0, tag=0, nbytes=1),
                ev(1, 1, EventKind.RECV, peer=0, tag=0, nbytes=2),
            ],
        ]
        m = match_events(per_rank)
        assert m.transfer_of[(0, 0)] == (1, 0)
        assert m.transfer_of[(0, 1)] == (1, 1)
        assert m.transfer_index[(0, 1)] == 1

    def test_tags_separate_channels(self):
        per_rank = [
            [
                ev(0, 0, EventKind.SEND, peer=1, tag=5),
                ev(0, 1, EventKind.SEND, peer=1, tag=6),
            ],
            [
                # Posted in opposite tag order: tag matching must pair them.
                ev(1, 0, EventKind.RECV, peer=0, tag=6),
                ev(1, 1, EventKind.RECV, peer=0, tag=5),
            ],
        ]
        m = match_events(per_rank)
        assert m.transfer_of[(0, 0)] == (1, 1)
        assert m.transfer_of[(0, 1)] == (1, 0)

    def test_unpaired_send_rejected(self):
        per_rank = [[ev(0, 0, EventKind.SEND, peer=1, tag=0)], []]
        with pytest.raises(MatchError, match="unpaired"):
            match_events(per_rank)

    def test_unpaired_recv_rejected(self):
        per_rank = [[], [ev(1, 0, EventKind.RECV, peer=0, tag=0)]]
        with pytest.raises(MatchError, match="unpaired"):
            match_events(per_rank)

    def test_sendrecv_contributes_both_halves(self):
        per_rank = [
            [
                ev(
                    0, 0, EventKind.SENDRECV,
                    peer=1, tag=0, nbytes=4, recv_peer=1, recv_tag=1, recv_nbytes=8,
                )
            ],
            [
                ev(
                    1, 0, EventKind.SENDRECV,
                    peer=0, tag=1, nbytes=8, recv_peer=0, recv_tag=0, recv_nbytes=4,
                )
            ],
        ]
        m = match_events(per_rank)
        # 0's send half -> 1's recv half, and vice versa.
        assert m.transfer_of[(0, 0)] == (1, 0)
        assert m.transfer_of[(1, 0)] == (0, 0)


class TestCompletions:
    def test_wait_links_to_nonblocking(self):
        per_rank = [
            [
                ev(0, 0, EventKind.ISEND, peer=1, tag=0, req=7),
                ev(0, 1, EventKind.WAIT, reqs=(7,), completed=(7,)),
            ],
            [ev(1, 0, EventKind.RECV, peer=0, tag=0)],
        ]
        m = match_events(per_rank)
        assert m.completion_of[(0, 0)] == (0, 1)
        assert not m.uncompleted

    def test_waitall_links_many(self):
        per_rank = [
            [
                ev(0, 0, EventKind.IRECV, peer=1, tag=0, req=0),
                ev(0, 1, EventKind.IRECV, peer=1, tag=1, req=1),
                ev(0, 2, EventKind.WAITALL, reqs=(0, 1), completed=(0, 1)),
            ],
            [
                ev(1, 0, EventKind.SEND, peer=0, tag=0),
                ev(1, 1, EventKind.SEND, peer=0, tag=1),
            ],
        ]
        m = match_events(per_rank)
        assert m.completion_of[(0, 0)] == (0, 2)
        assert m.completion_of[(0, 1)] == (0, 2)

    def test_uncompleted_recorded(self):
        per_rank = [
            [ev(0, 0, EventKind.ISEND, peer=1, tag=0, req=3)],
            [ev(1, 0, EventKind.RECV, peer=0, tag=0)],
        ]
        m = match_events(per_rank)
        assert m.uncompleted == [(0, 0)]

    def test_unknown_completion_rejected(self):
        per_rank = [[ev(0, 0, EventKind.WAIT, reqs=(9,), completed=(9,))]]
        with pytest.raises(MatchError, match="unknown"):
            match_events(per_rank)


class TestCollectives:
    def test_groups_by_ordinal(self):
        per_rank = [
            [ev(r, 0, EventKind.ALLREDUCE, nbytes=64, coll_seq=0)] for r in range(3)
        ]
        m = match_events(per_rank)
        assert len(m.collectives) == 1
        g = m.collectives[0]
        assert g.kind == EventKind.ALLREDUCE
        assert g.members == ((0, 0), (1, 0), (2, 0))
        assert g.nbytes == 64

    def test_fallback_ordinal_by_count(self):
        # coll_seq=-1: groups by per-rank collective order instead.
        per_rank = [
            [
                ev(r, 0, EventKind.BARRIER, coll_seq=-1),
                ev(r, 1, EventKind.ALLREDUCE, nbytes=8, coll_seq=-1),
            ]
            for r in range(2)
        ]
        m = match_events(per_rank)
        assert [g.kind for g in m.collectives] == [EventKind.BARRIER, EventKind.ALLREDUCE]

    def test_kind_mismatch_rejected(self):
        per_rank = [
            [ev(0, 0, EventKind.BARRIER, coll_seq=0)],
            [ev(1, 0, EventKind.ALLREDUCE, coll_seq=0)],
        ]
        with pytest.raises(MatchError, match="called"):
            match_events(per_rank)

    def test_root_mismatch_rejected(self):
        per_rank = [
            [ev(0, 0, EventKind.BCAST, root=0, coll_seq=0)],
            [ev(1, 0, EventKind.BCAST, root=1, coll_seq=0)],
        ]
        with pytest.raises(MatchError, match="root mismatch"):
            match_events(per_rank)

    def test_missing_rank_rejected(self):
        per_rank = [
            [ev(0, 0, EventKind.BARRIER, coll_seq=0)],
            [],
        ]
        with pytest.raises(MatchError, match="missing ranks"):
            match_events(per_rank)


class TestSimulatedTraces:
    def test_ring_fully_matched(self, ring_trace):
        per_rank = ring_trace.load_all()
        m = match_events(per_rank)
        sends = sum(
            1 for evs in per_rank for e in evs if e.kind in (EventKind.SEND, EventKind.ISEND)
        )
        assert m.link_count() == sends
        assert len(m.collectives) == 1  # the final allreduce

    def test_stencil_completions_all_linked(self, stencil_trace):
        per_rank = stencil_trace.load_all()
        m = match_events(per_rank)
        nonblocking = sum(
            1
            for evs in per_rank
            for e in evs
            if e.kind in (EventKind.ISEND, EventKind.IRECV)
        )
        assert len(m.completion_of) == nonblocking
        assert not m.uncompleted
