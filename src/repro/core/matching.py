"""Order-based cross-rank event matching (§4.1).

"Each message event is guaranteed to have a counterpart, and this
counterpart can be found simply by processing each event in order on
each processor" — no clock synchronization, only per-rank execution
order.  For every channel ``(src, dst, tag)`` the n-th send matches the
n-th receive (MPI non-overtaking); collectives match by per-rank
ordinal; nonblocking operations link to the completion event that
retired their request ("status flags", Fig. 3).

The result is a :class:`MatchResult` of pure key-to-key links, consumed
by the graph builder and by the streaming traversal.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.core.diagnostics import DiagnosticError
from repro.trace.events import (
    COLLECTIVE_KINDS,
    EventKind,
    EventRecord,
    ROOTED_COLLECTIVES,
)

__all__ = ["MatchResult", "MatchError", "CollectiveGroup", "match_events"]

Key = tuple  # (rank, seq)


class MatchError(DiagnosticError):
    """Traces cannot be paired into a consistent message graph.

    Carries the structured ``code``/``rank``/``seq`` fields of
    :class:`~repro.core.diagnostics.DiagnosticError`, so matching
    failures name the same defect the ``repro-lint`` pre-flight pass
    reports (e.g. ``unmatched-endpoint``, ``collective-mismatch``).
    """


@dataclass(frozen=True)
class CollectiveGroup:
    """One matched collective instance across all ranks."""

    ordinal: int
    kind: EventKind
    root: int
    nbytes: int
    members: tuple  # Key per rank, indexed by rank


@dataclass
class MatchResult:
    """All cross-event links recovered from the traces.

    Attributes
    ----------
    transfer_of:
        send-side key -> receive-side key, one entry per message.  The
        send side is a SEND/ISEND (or SENDRECV acting as its send half);
        the receive side a RECV/IRECV (or SENDRECV receive half).
    reverse_transfer_of:
        the inverse mapping.
    completion_of:
        ISEND/IRECV key -> key of the WAIT/WAITALL/WAITSOME/TEST event
        that completed its request.
    transfer_index:
        send-side key -> ordinal of the transfer on its channel
        ``(src, dst, tag)``.  This is the canonical per-message identity
        both the in-core builder and the streaming traversal can compute
        independently, so edge uids (deterministic delta sampling) are
        keyed on it.
    collectives:
        matched :class:`CollectiveGroup` list, by ordinal.
    uncompleted:
        ISEND/IRECV keys whose request no completion event retired
        (§4.3's problematic fully-asynchronous case).
    """

    transfer_of: dict = field(default_factory=dict)
    reverse_transfer_of: dict = field(default_factory=dict)
    completion_of: dict = field(default_factory=dict)
    transfer_index: dict = field(default_factory=dict)
    collectives: list = field(default_factory=list)
    uncompleted: list = field(default_factory=list)

    def link_count(self) -> int:
        return len(self.transfer_of)


def _channels_of(ev: EventRecord) -> list[tuple[str, tuple]]:
    """(role, channel) contributions of one event to pairwise matching."""
    out = []
    if ev.kind in (EventKind.SEND, EventKind.ISEND):
        out.append(("send", (ev.rank, ev.peer, ev.tag)))
    elif ev.kind in (EventKind.RECV, EventKind.IRECV):
        out.append(("recv", (ev.peer, ev.rank, ev.tag)))
    elif ev.kind == EventKind.SENDRECV:
        out.append(("send", (ev.rank, ev.peer, ev.tag)))
        out.append(("recv", (ev.recv_peer, ev.rank, ev.recv_tag)))
    return out


def match_events(per_rank: Sequence[Sequence[EventRecord]]) -> MatchResult:
    """Match a complete run's events (in-core variant).

    Walks every rank's events in order exactly once (§4.1): FIFO
    channel queues pair sends with receives; request-id maps link
    nonblocking operations to their completions; collective ordinals
    group collective calls.
    """
    with obs.span("match_events"):
        result = _match_events_impl(per_rank)
        obs.span_add("match.transfers", len(result.transfer_of))
        obs.span_add("match.completions", len(result.completion_of))
        obs.span_add("match.collectives", len(result.collectives))
        if result.uncompleted:
            obs.span_add("match.uncompleted", len(result.uncompleted))
        return result


def _match_events_impl(per_rank: Sequence[Sequence[EventRecord]]) -> MatchResult:
    result = MatchResult()
    pending_sends: dict[tuple, deque] = defaultdict(deque)
    pending_recvs: dict[tuple, deque] = defaultdict(deque)
    send_counts: dict[tuple, int] = defaultdict(int)
    collectives: dict[int, dict] = {}

    for rank, events in enumerate(per_rank):
        open_reqs: dict[int, Key] = {}
        coll_counter = 0
        for ev in events:
            key = (ev.rank, ev.seq)
            for role, channel in _channels_of(ev):
                if role == "send":
                    result.transfer_index[key] = send_counts[channel]
                    send_counts[channel] += 1
                    q = pending_recvs[channel]
                    if q:
                        rkey = q.popleft()
                        result.transfer_of[key] = rkey
                        result.reverse_transfer_of[rkey] = key
                    else:
                        pending_sends[channel].append(key)
                else:
                    q = pending_sends[channel]
                    if q:
                        skey = q.popleft()
                        result.transfer_of[skey] = key
                        result.reverse_transfer_of[key] = skey
                    else:
                        pending_recvs[channel].append(key)

            if ev.kind in (EventKind.ISEND, EventKind.IRECV):
                open_reqs[ev.req] = key
            elif ev.kind.is_completion:
                for rid in ev.completed:
                    src_key = open_reqs.pop(rid, None)
                    if src_key is None:
                        raise MatchError(
                            f"rank {rank} event #{ev.seq} completes unknown/duplicate "
                            f"request {rid}",
                            code="wait-without-request",
                            rank=rank,
                            seq=ev.seq,
                        )
                    result.completion_of[src_key] = key
            elif ev.kind in COLLECTIVE_KINDS:
                ordinal = ev.coll_seq if ev.coll_seq >= 0 else coll_counter
                coll_counter += 1
                inst = collectives.setdefault(
                    ordinal,
                    {"kind": ev.kind, "root": ev.root, "nbytes": ev.nbytes, "members": {}},
                )
                if inst["kind"] != ev.kind:
                    raise MatchError(
                        f"collective #{ordinal}: rank {rank} called {ev.kind.name}, "
                        f"others called {inst['kind'].name}",
                        code="collective-mismatch",
                        rank=rank,
                        seq=ev.seq,
                    )
                if ev.kind in ROOTED_COLLECTIVES and inst["root"] != ev.root:
                    raise MatchError(
                        f"collective #{ordinal} ({ev.kind.name}): root mismatch "
                        f"({ev.root} vs {inst['root']})",
                        code="collective-mismatch",
                        rank=rank,
                        seq=ev.seq,
                    )
                if rank in inst["members"]:
                    raise MatchError(
                        f"rank {rank} appears twice in collective #{ordinal}",
                        code="collective-mismatch",
                        rank=rank,
                        seq=ev.seq,
                    )
                inst["members"][rank] = key
                inst["nbytes"] = max(inst["nbytes"], ev.nbytes)
        result.uncompleted.extend(open_reqs.values())

    # Unpaired pairwise events are a hard error: the run completed, so every
    # message had a counterpart (§4.1).
    leftovers = []
    for channel, q in pending_sends.items():
        leftovers += [f"send {k} on channel {channel}" for k in q]
    for channel, q in pending_recvs.items():
        leftovers += [f"recv {k} on channel {channel}" for k in q]
    if leftovers:
        shown = "; ".join(leftovers[:8])
        raise MatchError(
            f"{len(leftovers)} unpaired pairwise event(s): {shown}",
            code="unmatched-endpoint",
        )

    nprocs = len(per_rank)
    for ordinal in sorted(collectives):
        inst = collectives[ordinal]
        if len(inst["members"]) != nprocs:
            missing = sorted(set(range(nprocs)) - set(inst["members"]))
            raise MatchError(
                f"collective #{ordinal} ({inst['kind'].name}) missing ranks {missing}",
                code="collective-mismatch",
            )
        result.collectives.append(
            CollectiveGroup(
                ordinal=ordinal,
                kind=inst["kind"],
                root=inst["root"],
                nbytes=inst["nbytes"],
                members=tuple(inst["members"][r] for r in range(nprocs)),
            )
        )
    return result
