#!/usr/bin/env python
"""Time-resolved POP efficiency metrics over the columnar frame layer.

Traces a master/worker run (deliberately imbalanced: one coordinator
rank mostly waits), then walks the `repro.metrics` surface:

1. whole-run POP metrics and the PE = LB x CommE identity,
2. the CommE = SerE x TE split against an ideal-network replay,
3. the windowed timeline that localizes *when* efficiency dips,
4. scripted columnar analysis on the event frame and the zero-copy
   graph frames.
"""

import argparse

import numpy as np

from repro.apps import MasterWorkerParams, master_worker
from repro.core import build_graph
from repro.metrics import (
    build_report,
    edge_frame,
    ideal_runtime,
    pop_metrics,
    pop_timeline,
    render_text,
    trace_frame,
)
from repro.mpisim import run
from repro.trace.events import EventKind


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nprocs", type=int, default=8)
    ap.add_argument("--tasks", type=int, default=40)
    ap.add_argument("--windows", type=int, default=10)
    args = ap.parse_args()

    print(f"tracing master_worker: p={args.nprocs}, {args.tasks} tasks ...")
    trace = run(
        master_worker(MasterWorkerParams(tasks=args.tasks)),
        nprocs=args.nprocs,
        seed=0,
    ).trace

    # 1-3. whole-run metrics, ideal split, timeline — then one report
    frame = trace_frame(trace)
    ideal = ideal_runtime(trace)
    pop = pop_metrics(frame, ideal=ideal)
    timeline = pop_timeline(frame, args.windows)
    print()
    print(render_text(build_report(pop, timeline, program="master_worker")))

    assert abs(pop.parallel_efficiency
               - pop.load_balance * pop.comm_efficiency) < 1e-12
    w = timeline.worst_window()
    print(f"\nworst window: #{w} "
          f"(PE {timeline.parallel_efficiency[w]:.3f}; the coordinator "
          f"rank's wait time drags LB down hardest there)")

    # 4a. scripted columnar analysis: who sends how much?
    sends = frame.filter(lambda f: f["kind"] == int(EventKind.SEND))
    volume = sends.groupby("rank").sum("nbytes")
    print("\nbytes sent per rank (columnar groupby):")
    for rank, nbytes in zip(volume["rank"], volume["nbytes"]):
        print(f"  rank {rank}: {nbytes:,} B")

    # 4b. the built graph as zero-copy frames over the compiled plan
    build = build_graph(trace)
    ef = edge_frame(build)
    remote = ef.filter(~np.asarray(ef["is_local"]))
    print(f"\ngraph: {len(ef):,} edges, {len(remote):,} cross-rank; "
          f"heaviest message {int(remote['nbytes'].max()):,} B "
          f"(columns are views over the CompiledPlan arrays)")


if __name__ == "__main__":
    main()
