"""ASSUM1 — where the §5.2 iid assumption breaks: link contention.

§5.2: "two separate messages from one host to another have latency
distributions that are also iid.  Systems where routing adaptation and
'warming up' of links occurs will violate this second assumption, and a
suitable alternative tool must be employed."

We demonstrate the break quantitatively: a burst workload streams many
back-to-back messages over one link.  On a contention-free machine the
ping-pong-measured signature predicts the (tiny) delta fine; on a
machine whose links *serialize* payloads, the one-message-at-a-time
ping-pong benchmark cannot observe queueing, so the analyzer badly
under-predicts — exactly the failure mode the paper warns about.
"""

import time

from benchmarks._common import emit, table
from repro.core import PerturbationSpec, build_graph, propagate
from repro.microbench import measure_machine
from repro.mpisim import Compute, Isend, Machine, NetworkModel, Recv, Waitall, run
from repro.noise import Exponential

BASE_NET = NetworkModel(
    latency=500.0,
    bandwidth=1.0,
    send_overhead=50.0,
    recv_overhead=50.0,
    eager_threshold=100_000,
)
BURSTS = 4
BURST_LEN = 8
MSG_BYTES = 8_000


def burst_stream(me):
    """Rank 0 streams bursts of back-to-back messages to rank 1."""
    if me.rank == 0:
        for _ in range(BURSTS):
            reqs = []
            for i in range(BURST_LEN):
                reqs.append((yield Isend(dest=1, nbytes=MSG_BYTES, tag=i)))
            yield Waitall(reqs)
            yield Compute(200_000.0)
    elif me.rank == 1:
        for _ in range(BURSTS):
            for i in range(BURST_LEN):
                yield Recv(source=0, tag=i)
            yield Compute(200_000.0)


def test_assum1_iid_violation(benchmark):
    base = run(burst_stream, machine=Machine(nprocs=2, network=BASE_NET), seed=0)
    build = build_graph(base.trace)

    rows = []
    ratios = {}
    t0 = time.perf_counter()
    for label, network in (
        ("iid jitter", BASE_NET.with_jitter(Exponential(300.0))),
        ("contended link", BASE_NET.with_contention()),
    ):
        target = Machine(nprocs=2, network=network, name=label)
        actual = run(burst_stream, machine=target, seed=0).makespan - base.makespan
        report = measure_machine(target, seed=1, ftq_quanta=256, pingpong_iterations=256,
                                 bandwidth_iterations=16, mraz_messages=128)
        sig = report.to_signature()
        predicted = propagate(build, PerturbationSpec(sig, seed=0)).max_delay
        ratio = predicted / actual if actual else float("nan")
        ratios[label] = ratio
        rows.append(
            [
                label,
                f"{sig.latency.mean() if sig.latency.mean() else 0:.0f}",
                f"{predicted:,.0f}",
                f"{actual:,.0f}",
                f"{ratio:.2f}",
            ]
        )

    emit(
        "assum_iid",
        "burst workload: 4 bursts x 8 back-to-back 8 kB messages on one link\n\n"
        + table(
            ["target machine", "measured jitter mean", "predicted", "actual", "pred/actual"],
            rows,
            widths=[16, 20, 12, 12, 12],
        ),
        params={"bursts": BURSTS, "burst_len": BURST_LEN, "msg_bytes": MSG_BYTES},
        timings={"scenarios_s": time.perf_counter() - t0},
        metrics={"pred_over_actual": ratios},
    )

    # iid case: the microbenchmarks see the jitter and the model responds.
    # It over-predicts by small factors on this burst pattern: the delta
    # model chains every per-message jitter through the receiver's recv
    # sequence, while in reality the pipelined burst absorbs all but the
    # tail (the max-only, no-slack conservatism of §4.2's model).
    assert 0.3 < ratios["iid jitter"] < 6.0
    # contended case: ping-pong (one message in flight) cannot observe
    # queueing — the analyzer under-predicts by a large factor (§5.2's
    # "a suitable alternative tool must be employed").
    assert ratios["contended link"] < 0.3 * ratios["iid jitter"]

    sig = measure_machine(
        Machine(nprocs=2, network=BASE_NET.with_contention()), seed=1, ftq_quanta=128,
        pingpong_iterations=64, bandwidth_iterations=8, mraz_messages=64
    ).to_signature()
    benchmark(propagate, build, PerturbationSpec(sig, seed=0))
