"""Property tests: the certified static bounds must contain every
Monte-Carlo replicate, for any bundled app, any propagation engine, any
seed — and for arbitrary simulator-producible programs."""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_APPS
from repro.core import PerturbationSpec, build_graph, monte_carlo
from repro.core.compiled import compiled_plan
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature, Uniform
from repro.verify import makespan_bounds

from tests.conftest import plan_program

APP_PARAMS = {
    "token_ring": {"traversals": 2},
    "stencil1d": {"iterations": 2},
    "stencil2d": {"iterations": 2},
    "master_worker": {"tasks": 6},
    "allreduce_iter": {"iterations": 3},
    "fft_transpose": {"stages": 2},
    "butterfly_allreduce": {"iterations": 2},
    "pipeline": {"items": 4},
    "random_sparse": {"iterations": 2},
}

SIGNATURE = MachineSignature(
    os_noise=Exponential(80.0),
    latency=Uniform(20.0, 60.0),
    per_byte=Constant(0.005),
    name="prop",
)


@lru_cache(maxsize=None)
def app_build(name):
    factory, params_cls = ALL_APPS[name]
    nprocs = 8 if name == "butterfly_allreduce" else 4
    return build_graph(run(factory(params_cls(**APP_PARAMS[name])), nprocs=nprocs, seed=1).trace)


@lru_cache(maxsize=None)
def app_bounds(name):
    return makespan_bounds(compiled_plan(app_build(name)), SIGNATURE)


@given(
    name=st.sampled_from(sorted(ALL_APPS)),
    engine=st.sampled_from(["compiled", "graph"]),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_every_replicate_inside_static_bounds(name, engine, seed):
    build = app_build(name)
    bounds = app_bounds(name)
    dist = monte_carlo(
        build, PerturbationSpec(SIGNATURE, seed=seed), replicates=5, engine=engine
    )
    assert bounds.violations(dist.samples) == [], (name, engine, seed)


_round = st.one_of(
    st.tuples(st.just("compute"), st.integers(100, 3000)),
    st.tuples(st.just("ring"), st.integers(0, 20_000)),
    st.tuples(st.just("xchg"), st.integers(0, 2000)),
    st.tuples(st.just("nb"), st.integers(0, 20_000)),
    st.tuples(st.just("allreduce"), st.integers(0, 128)),
    st.tuples(st.just("barrier")),
)


@given(
    plan=st.lists(_round, min_size=1, max_size=4),
    p=st.integers(2, 5),
    seed=st.integers(0, 10_000),
    scale=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=25, deadline=None)
def test_arbitrary_programs_respect_bounds(plan, p, seed, scale):
    build = build_graph(run(plan_program(plan), nprocs=p, seed=1).trace)
    bounds = makespan_bounds(compiled_plan(build), SIGNATURE, scale=scale)
    dist = monte_carlo(
        build, PerturbationSpec(SIGNATURE, seed=seed, scale=scale), replicates=4
    )
    assert bounds.violations(dist.samples) == []


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_all_apps_coarsen_bit_stable(name):
    """The acceptance invariant: bounds identical floats with the
    coarsening pass forced on and forced off, for every bundled app."""
    build = app_build(name)
    on = makespan_bounds(compiled_plan(build, coarsen="on"), SIGNATURE)
    off = makespan_bounds(compiled_plan(build, coarsen="off"), SIGNATURE)
    assert on.rank_lo.tolist() == off.rank_lo.tolist(), name
    assert on.rank_hi.tolist() == off.rank_hi.tolist(), name
