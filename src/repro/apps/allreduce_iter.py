"""Iterative solver surrogate: compute + global reduction per step.

The conjugate-gradient-shaped pattern whose collectives make "a single
slow processor induce idle time in all other processors" (§3.2) — the
workload where collective modeling accuracy (Fig. 4 hub vs explicit
butterfly, ABL1) matters most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Allreduce, Compute, Op, RankInfo

__all__ = ["AllreduceIterParams", "allreduce_iter", "stress_params"]


@dataclass(frozen=True)
class AllreduceIterParams:
    """Configuration of the collective-heavy iteration.

    iterations:
        Solver steps (each ends in one allreduce).
    reduce_bytes:
        Reduction payload (two dot products of doubles ≈ 16 B).
    compute_cycles:
        Per-step local work (sparse matvec surrogate).
    imbalance:
        Deterministic per-rank work spread: rank r computes
        ``compute_cycles * (1 + imbalance * r / p)``.
    """

    iterations: int = 20
    reduce_bytes: int = 16
    compute_cycles: float = 30_000.0
    imbalance: float = 0.0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.compute_cycles < 0 or self.imbalance < 0:
            raise ValueError("compute_cycles and imbalance must be >= 0")


def stress_params(iterations: int = 5000) -> AllreduceIterParams:
    """Iteration-scaled stress configuration for the coarsening engine.

    Every step is one compute + one allreduce, so the traced event count
    scales as ``nprocs * iterations`` and the built graph (hub
    collectives expand to fan-in/fan-out trees) grows a few times
    faster.  Used alongside :func:`repro.apps.stencil1d.stress_params`
    by ``benchmarks/bench_perf_coarsen.py``.
    """
    return AllreduceIterParams(iterations=iterations, imbalance=0.1)


def allreduce_iter(params: AllreduceIterParams = AllreduceIterParams()):
    """Rank program factory for the CG-style iteration."""

    def program(me: RankInfo) -> Iterator[Op]:
        cost = params.compute_cycles * (1.0 + params.imbalance * me.rank / me.size)
        for _ in range(params.iterations):
            yield Compute(cost)
            yield Allreduce(nbytes=params.reduce_bytes)

    return program
