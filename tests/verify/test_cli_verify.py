"""CLI tests: ``repro-verify``, the ``--verify`` pre-flight of
``repro-analyze``, and the ``python -m repro.testing.racegen`` fixture
tool — the exact pipeline the CI ``verify`` job runs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main_analyze, main_microbench, main_trace, main_verify
from repro.testing import racegen


@pytest.fixture(scope="module")
def clean_traces(tmp_path_factory):
    d = tmp_path_factory.mktemp("clean")
    rc = main_trace(
        ["--app", "token_ring", "--nprocs", "4", "--out", str(d),
         "--stem", "ring", "--param", "traversals=2", "--seed", "1"]
    )
    assert rc == 0
    return d


@pytest.fixture(scope="module")
def signature(tmp_path_factory):
    sig = tmp_path_factory.mktemp("sig") / "sig.json"
    rc = main_microbench(["--machine", "noisy", "--out", str(sig), "--seed", "0"])
    assert rc == 0
    return sig


@pytest.fixture(scope="module")
def race_traces(tmp_path_factory):
    d = tmp_path_factory.mktemp("race")
    rc = racegen.main(["--scenario", "race", "--out", str(d), "--stem", "racegen"])
    assert rc == 0
    return d


@pytest.fixture(scope="module")
def clean_scenario_traces(tmp_path_factory):
    d = tmp_path_factory.mktemp("benign")
    rc = racegen.main(["--scenario", "clean", "--out", str(d), "--stem", "racegen"])
    assert rc == 0
    return d


class TestReproVerify:
    def test_list_rules(self, capsys):
        assert main_verify(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert out.count("MPG3") == 7
        assert "[certified-bounds]" in out
        assert "[match-order-race]" in out

    def test_requires_traces_and_stem(self):
        with pytest.raises(SystemExit):
            main_verify([])

    def test_replicates_need_signature(self, clean_traces):
        with pytest.raises(SystemExit, match="--replicates needs"):
            main_verify(
                ["--traces", str(clean_traces), "--stem", "ring", "--replicates", "5"]
            )

    def test_clean_app_with_bounds_gates_clean(self, clean_traces, signature, capsys):
        rc = main_verify(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--signature", str(signature), "--replicates", "10",
             "--fail-on", "warning"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "certified makespan delay in [" in out
        assert "all contained" in out

    def test_json_report_to_file(self, clean_traces, signature, tmp_path):
        out = tmp_path / "report.json"
        rc = main_verify(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--signature", str(signature),
             "--format", "json", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-verify-report/1"
        assert doc["verification"]["bounds"]["makespan_hi"] > 0

    def test_race_fixture_fails_warning_gate_naming_receive(self, race_traces, capsys):
        rc = main_verify(
            ["--traces", str(race_traces), "--stem", "racegen", "--fail-on", "warning"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "MPG311" in out
        assert "ambiguous wildcard receive r0#" in out

    def test_race_fixture_passes_default_gate(self, race_traces):
        # warnings only: the default --fail-on error lets it through
        assert main_verify(["--traces", str(race_traces), "--stem", "racegen"]) == 0

    def test_clean_scenario_passes_warning_gate(self, clean_scenario_traces, capsys):
        rc = main_verify(
            ["--traces", str(clean_scenario_traces), "--stem", "racegen",
             "--fail-on", "warning"]
        )
        assert rc == 0
        assert "MPG310" in capsys.readouterr().out

    def test_sarif_report(self, race_traces, tmp_path):
        out = tmp_path / "report.sarif"
        rc = main_verify(
            ["--traces", str(race_traces), "--stem", "racegen",
             "--format", "sarif", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} >= {"MPG311"}

    def test_disable_rule_silences_race(self, race_traces):
        rc = main_verify(
            ["--traces", str(race_traces), "--stem", "racegen",
             "--fail-on", "warning", "--disable", "MPG311"]
        )
        assert rc == 0

    def test_quantile_flag_validated(self, clean_traces, signature):
        with pytest.raises(ValueError, match="quantile"):
            main_verify(
                ["--traces", str(clean_traces), "--stem", "ring",
                 "--signature", str(signature), "--quantile", "0.1"]
            )


class TestAnalyzeVerifyPreflight:
    def test_preflight_runs_and_analysis_proceeds(self, clean_traces, signature, capsys):
        rc = main_analyze(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--signature", str(signature), "--verify", "--replicates", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "certified makespan delay in [" in out
        assert "monte carlo: 8 replicates" in out

    def test_preflight_report_to_file(self, clean_traces, signature, tmp_path, capsys):
        vout = tmp_path / "verify.json"
        rc = main_analyze(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--signature", str(signature), "--verify",
             "--verify-format", "json", "--verify-out", str(vout)]
        )
        assert rc == 0
        doc = json.loads(vout.read_text())
        assert doc["schema"] == "repro-verify-report/1"

    def test_streaming_engine_rejected(self, clean_traces, signature):
        with pytest.raises(SystemExit, match="graph engine"):
            main_analyze(
                ["--traces", str(clean_traces), "--stem", "ring",
                 "--signature", str(signature), "--verify",
                 "--engine", "streaming"]
            )


class TestRacegenTool:
    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            racegen.main(["--scenario", "nope", "--out", str(tmp_path)])

    def test_write_scenario_unknown_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scenario"):
            racegen.write_scenario("nope", str(tmp_path), "x")

    def test_deadlock_scenario_flags_mpg312(self, tmp_path, capsys):
        d = tmp_path / "deadlock"
        assert racegen.main(["--scenario", "deadlock", "--out", str(d)]) == 0
        rc = main_verify(
            ["--traces", str(d), "--stem", "racegen", "--fail-on", "warning"]
        )
        assert rc == 1
        assert "MPG312" in capsys.readouterr().out
