"""Deterministic test harnesses for the analyzer itself.

:mod:`repro.testing.faults` is the fault-injection harness that proves
the execution backends' retry / timeout / restart / resume paths (used
by ``tests/`` and the CI chaos job); :mod:`repro.testing.slowrank`
manufactures known-culprit traces for the diagnosis layer (used by
``tests/diagnose`` and the CI diagnose job); :mod:`repro.testing.
racegen` manufactures known-verdict wildcard-matching scenarios for the
static verifier (used by ``tests/verify`` and the CI verify job).
"""

from typing import Any

from repro.testing.faults import (
    FAULT_EXIT_CODE,
    FailItem,
    FaultyFn,
    KillWorker,
    SlowItem,
    corrupt_checkpoints,
    item_key,
)

_SLOWRANK_EXPORTS = frozenset({"slow_rank", "slow_rank_memory", "stretch_events"})
_RACEGEN_EXPORTS = frozenset({"SCENARIOS", "write_scenario"})


def __getattr__(name: str) -> Any:
    # Lazy so `python -m repro.testing.<module>` does not pre-import the
    # module it is about to execute (runpy warns on that).
    if name in _SLOWRANK_EXPORTS:
        from repro.testing import slowrank

        return getattr(slowrank, name)
    if name in _RACEGEN_EXPORTS:
        from repro.testing import racegen

        return getattr(racegen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAULT_EXIT_CODE",
    "FailItem",
    "FaultyFn",
    "KillWorker",
    "SCENARIOS",
    "SlowItem",
    "corrupt_checkpoints",
    "item_key",
    "slow_rank",
    "slow_rank_memory",
    "stretch_events",
    "write_scenario",
]
