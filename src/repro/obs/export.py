"""Session exporters: structured JSONL and Chrome trace-event JSON.

The Chrome format is the `trace-event` JSON consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: a ``traceEvents``
list of complete (``"ph": "X"``) events with microsecond timestamps.
Each span becomes one event on its ``(pid, tid)`` track, so a
``--jobs N`` analysis shows the main pipeline phases on the parent
process track and per-replicate work on one track per worker — the
analyzer's own execution rendered in the paper's idiom.

The JSONL export is the scriptable twin: one JSON object per line
(``{"type": "span", ...}`` records, then one ``{"type": "metrics"}``
record), greppable and trivially loadable from pandas/jq.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro._util import atomic_write_text
from repro.obs.session import Session, SpanRecord

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "events_chrome_trace",
    "to_events_chrome_trace",
    "write_events_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "write_metrics",
]


def _span_args(span: SpanRecord) -> dict:
    args = dict(span.attrs)
    if span.counters:
        args.update(span.counters)
    args["cpu_ms"] = round(span.cpu_time * 1e3, 3)
    return args


def chrome_trace_events(session: Session) -> list[dict]:
    """Flatten a session into trace-event dicts (sorted by timestamp)."""
    events: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    for span in session.completed_spans():
        tracks.add((span.pid, span.tid))
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.t_start - session.epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": _span_args(span),
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"]))
    meta: list[dict] = []
    for pid in sorted({p for p, _ in tracks}):
        name = session.label if pid == session.pid else f"{session.label}-worker"
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{name} (pid {pid})"},
            }
        )
    return meta + events


def to_chrome_trace(session: Session) -> dict:
    """The full Chrome trace object (``json.dump``-ready)."""
    return {
        "traceEvents": chrome_trace_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "label": session.label,
            "wall_epoch": session.wall_epoch,
            "workers": session.workers,
            "metrics": session.metrics.as_dict(),
        },
    }


def write_chrome_trace(session: Session, path: str | Path) -> Path:
    return atomic_write_text(path, json.dumps(to_chrome_trace(session)) + "\n")


# ---------------------------------------------------------------------------
# MPI trace → Chrome trace (the *subject* trace, not the analyzer's own spans)
# ---------------------------------------------------------------------------


def events_chrome_trace(trace_set) -> list[dict]:
    """An MPI trace set as Chrome trace events — one track per rank.

    Every :class:`~repro.trace.events.EventRecord` becomes one complete
    (``"ph": "X"``) event named ``MPI_<kind>`` with timestamps in raw
    trace cycles (rendered as µs by viewers) and *all* scalar record
    fields mirrored exactly in ``args``, so
    :func:`repro.metrics.importers.chrome.import_chrome_trace` round-trips
    the trace bit-for-bit (JSON preserves doubles via ``repr``).
    """
    events: list[dict] = []
    for rank in range(trace_set.nprocs):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for rank in range(trace_set.nprocs):
        for ev in trace_set.events_of(rank):
            args = {
                "seq": ev.seq,
                "peer": ev.peer,
                "tag": ev.tag,
                "nbytes": ev.nbytes,
                "req": ev.req,
                "root": ev.root,
                "coll_seq": ev.coll_seq,
                "recv_peer": ev.recv_peer,
                "recv_tag": ev.recv_tag,
                "recv_nbytes": ev.recv_nbytes,
                "t_start": ev.t_start,
                "t_end": ev.t_end,
            }
            if ev.reqs:
                args["reqs"] = list(ev.reqs)
            if ev.completed:
                args["completed"] = list(ev.completed)
            events.append(
                {
                    "name": f"MPI_{ev.kind.name}",
                    "cat": "mpi",
                    "ph": "X",
                    "ts": ev.t_start,
                    "dur": ev.t_end - ev.t_start,
                    "pid": 0,
                    "tid": rank,
                    "args": args,
                }
            )
    return events


def to_events_chrome_trace(trace_set) -> dict:
    """The full Chrome trace object for an MPI trace set."""
    try:
        program = trace_set.meta(0).program
    except (IndexError, KeyError):  # pragma: no cover - defensive
        program = "unknown"
    return {
        "traceEvents": events_chrome_trace(trace_set),
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "repro-trace-events/1",
            "nprocs": trace_set.nprocs,
            "program": program,
        },
    }


def write_events_chrome_trace(trace_set, path: str | Path) -> Path:
    return atomic_write_text(path, json.dumps(to_events_chrome_trace(trace_set)) + "\n")


def jsonl_records(session: Session) -> Iterator[dict]:
    """Span records then one metrics record, as plain dicts."""
    for span in session.completed_spans():
        d = span.to_dict()
        d["type"] = "span"
        d["duration_s"] = span.duration
        d["cpu_s"] = span.cpu_time
        yield d
    yield {
        "type": "metrics",
        "pid": session.pid,
        "workers": session.workers,
        "metrics": session.metrics.as_dict(),
    }


def write_jsonl(session: Session, path: str | Path) -> Path:
    text = "".join(json.dumps(rec) + "\n" for rec in jsonl_records(session))
    return atomic_write_text(path, text)


def write_metrics(session: Session, path: str | Path) -> Path:
    """Metrics-only JSON report (the ``--metrics-out`` artifact)."""
    payload = {
        "label": session.label,
        "pid": session.pid,
        "workers": session.workers,
        "host_cores": os.cpu_count(),
        "metrics": session.metrics.as_dict(),
    }
    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
