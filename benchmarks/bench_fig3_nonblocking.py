"""FIG3 — nonblocking send/receive pair matched with waits (Eq. (2)).

Regenerates the Fig. 3 subgraph from a traced isend/irecv + wait run and
verifies the Eq. (2) semantics: immediate-return ends are unmodified;
transfer perturbations land on the wait pair, matched through the
status flags (request ids).
"""

import pytest

from benchmarks._common import bench_timings, emit, table
from repro.core import PerturbationSpec, build_graph, propagate
from repro.core.graph import DeltaKind, Phase
from repro.mpisim import Compute, Irecv, Isend, Wait, run
from repro.noise import Constant, MachineSignature
from repro.trace.events import EventKind

OS, LAT, PER_BYTE = 120.0, 40.0, 0.01
NBYTES = 1024


def prog(me):
    if me.rank == 0:
        r = yield Isend(dest=1, nbytes=NBYTES, tag=3)
        yield Compute(5_000.0)
        yield Wait(r)
    else:
        r = yield Irecv(source=0, tag=3)
        yield Compute(2_000.0)
        yield Wait(r)


def test_fig3_nonblocking_pair(benchmark):
    trace = run(prog, nprocs=2, seed=0).trace
    spec = PerturbationSpec(
        MachineSignature(
            os_noise=Constant(OS), latency=Constant(LAT), per_byte=Constant(PER_BYTE)
        ),
        seed=0,
    )

    def build_and_propagate():
        build = build_graph(trace)
        return build, propagate(build, spec)

    build, res = benchmark(build_and_propagate)
    g = build.graph
    D = res.node_delay

    # --- the Fig. 3 artifact: the subgraph's message edges ------------------
    rows = []
    for e in g.message_edges():
        src, dst = g.nodes[e.src], g.nodes[e.dst]
        rows.append(
            [
                f"r{src.rank} {src.kind.name}.{Phase(src.phase).name[0]}",
                f"r{dst.rank} {dst.kind.name}.{Phase(dst.phase).name[0]}",
                DeltaKind(e.delta.kind).name,
            ]
        )
    listing = table(["from", "to", "delta"], rows, widths=[16, 16, 14])

    # --- Eq. (2): immediate returns unmodified ------------------------------
    per_rank = build.events
    isend = next(e for e in per_rank[0] if e.kind == EventKind.ISEND)
    irecv = next(e for e in per_rank[1] if e.kind == EventKind.IRECV)
    wait0 = next(e for e in per_rank[0] if e.kind == EventKind.WAIT)
    wait1 = next(e for e in per_rank[1] if e.kind == EventKind.WAIT)

    d_isend_end = D[g.node_of(0, isend.seq, Phase.END)]
    d_irecv_end = D[g.node_of(1, irecv.seq, Phase.END)]
    assert d_isend_end == pytest.approx(OS)  # one gap sample only — no transfer
    assert d_irecv_end == pytest.approx(OS)

    # --- transfer lands on the waits (matched via status flags) ------------
    transfer = LAT + NBYTES * PER_BYTE
    d_w1 = D[g.node_of(1, wait1.seq, Phase.END)]
    d_w0 = D[g.node_of(0, wait0.seq, Phase.END)]
    d_isend_start = D[g.node_of(0, isend.seq, Phase.START)]
    assert d_w1 == pytest.approx(max(2 * OS, d_isend_start + transfer + OS))
    roundtrip = LAT + NBYTES * PER_BYTE + OS + LAT
    assert d_w0 == pytest.approx(max(2 * OS, d_irecv_end + roundtrip))

    verdict = table(
        ["node", "delay (cy)", "note"],
        [
            ["isend.e", f"{d_isend_end:.1f}", "unmodified (Eq. 2)"],
            ["irecv.e", f"{d_irecv_end:.1f}", "unmodified (Eq. 2)"],
            ["wait_recv.e", f"{d_w1:.1f}", "data path lands here"],
            ["wait_send.e", f"{d_w0:.1f}", "rendezvous ack lands here"],
        ],
        widths=[12, 12, 28],
    )
    emit(
        "fig3_nonblocking",
        listing + "\n\n" + verdict,
        params={"nbytes": NBYTES, "os": OS, "latency": LAT, "per_byte": PER_BYTE},
        timings=bench_timings(benchmark),
        metrics={
            "isend_end_delay": d_isend_end,
            "irecv_end_delay": d_irecv_end,
            "wait_recv_delay": d_w1,
            "wait_send_delay": d_w0,
        },
    )
