"""Graph-level rules (MPG1xx): defects in the built message-passing
graph and in the cross-rank structure it is built from.

MPG102/MPG103 work from aggregate per-channel and per-ordinal counters
over the raw events, so they still report precisely *which* channel or
collective is inconsistent even when matching refuses to build a graph
at all.  MPG101/MPG104/MPG105 inspect the materialized
:class:`~repro.core.graph.MessagePassingGraph`; when no graph could be
built they stay silent and the engine surfaces the structured build
error instead.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import TYPE_CHECKING, Iterator

from repro.core.graph import EdgeKind, MessagePassingGraph
from repro.lint.model import Finding, LintConfig, Severity
from repro.lint.registry import rule
from repro.trace.events import COLLECTIVE_KINDS, EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext

__all__: list[str] = []  # rules register themselves; nothing to re-export

_CYCLE_SHOW = 12  # nodes of a cycle to print before eliding


@rule(
    id="MPG101",
    code="graph-cycle",
    severity=Severity.ERROR,
    category="graph",
    summary="the message-passing graph must be a DAG",
    rationale=(
        "Perturbation propagation is a topological-order traversal; a cycle "
        "makes completion times undefined.  A trace of a completed run always "
        "yields a DAG (§4.3), so a cycle proves the trace or the matching is "
        "inconsistent."
    ),
)
def graph_cycle(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    g = ctx.graph
    if g is None:
        return
    indeg = [g.in_degree(n.node_id) for n in g.nodes]
    stack = [n for n, d in enumerate(indeg) if d == 0]
    reached = 0
    while stack:
        n = stack.pop()
        reached += 1
        for ei in g.out_edge_ids(n):
            dst = g.edges[ei].dst
            indeg[dst] -= 1
            if indeg[dst] == 0:
                stack.append(dst)
    if reached == len(g.nodes):
        return
    cyclic = [n for n, d in enumerate(indeg) if d > 0]
    cycle = _find_cycle(g, cyclic)
    shown = " -> ".join(_node_name(g, n) for n in cycle[:_CYCLE_SHOW])
    if len(cycle) > _CYCLE_SHOW:
        shown += f" -> ... ({len(cycle)} nodes)"
    yield graph_cycle.finding(
        f"graph is not a DAG: {len(g.nodes) - reached} node(s) lie on cycles; "
        f"one cycle: {shown}",
        node=cycle[0] if cycle else None,
    )


def _find_cycle(g: MessagePassingGraph, cyclic: list[int]) -> list[int]:
    """One concrete cycle within the unreached (cyclic) node set."""
    in_cycle = set(cyclic)
    seen: dict[int, int] = {}  # node -> position on the current walk
    walk: list[int] = []
    node = cyclic[0]
    while node not in seen:
        seen[node] = len(walk)
        walk.append(node)
        node = next(
            (g.edges[ei].dst for ei in g.out_edge_ids(node) if g.edges[ei].dst in in_cycle),
            walk[0],  # defensive: every cyclic node keeps a cyclic successor
        )
    return walk[seen[node] :]


def _node_name(g: MessagePassingGraph, node_id: int) -> str:
    n = g.nodes[node_id]
    if n.is_virtual:
        return n.label or f"virtual#{node_id}"
    return f"r{n.rank}#{n.seq}.{'S' if n.phase == 0 else 'E'}"


@rule(
    id="MPG102",
    code="unmatched-endpoint",
    severity=Severity.ERROR,
    category="graph",
    summary="every channel must carry equal send and receive counts",
    rationale=(
        "Order-based matching pairs the n-th send with the n-th receive per "
        "(src, dst, tag) channel; unequal counts leave endpoints without a "
        "counterpart and no message edge can be anchored for them (§4.1)."
    ),
)
def unmatched_endpoint(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    sends: Counter = Counter()
    recvs: Counter = Counter()
    for events in ctx.per_rank:
        for ev in events:
            if ev.kind in (EventKind.SEND, EventKind.ISEND):
                sends[(ev.rank, ev.peer, ev.tag)] += 1
            elif ev.kind in (EventKind.RECV, EventKind.IRECV):
                recvs[(ev.peer, ev.rank, ev.tag)] += 1
            elif ev.kind == EventKind.SENDRECV:
                sends[(ev.rank, ev.peer, ev.tag)] += 1
                recvs[(ev.recv_peer, ev.rank, ev.recv_tag)] += 1
    for channel in sorted(set(sends) | set(recvs)):
        ns, nr = sends.get(channel, 0), recvs.get(channel, 0)
        if ns != nr:
            src, dst, tag = channel
            yield unmatched_endpoint.finding(
                f"channel {src}->{dst} tag {tag}: {ns} send(s) but {nr} receive(s)",
                rank=src if ns > nr else dst,
            )


@rule(
    id="MPG103",
    code="collective-mismatch",
    severity=Severity.ERROR,
    category="graph",
    summary="all ranks must perform the same ordered collective sequence",
    rationale=(
        "MPI requires collectives on a communicator to be invoked in the same "
        "order everywhere; ordinal-based matching builds one subgraph per "
        "instance, so diverging kinds, roots, or counts corrupt the collective "
        "templates (Fig. 4)."
    ),
)
def collective_mismatch(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    per_rank_colls: list[list] = [
        [ev for ev in events if ev.kind in COLLECTIVE_KINDS] for events in ctx.per_rank
    ]
    if not per_rank_colls:
        return
    reference = per_rank_colls[0]
    for rank in range(1, len(per_rank_colls)):
        seq = per_rank_colls[rank]
        if len(seq) != len(reference):
            yield collective_mismatch.finding(
                f"rank {rank} performed {len(seq)} collective(s), rank 0 performed "
                f"{len(reference)}",
                rank=rank,
            )
            continue
        for i, (ref, ev) in enumerate(zip(reference, seq)):
            if ev.kind != ref.kind:
                yield collective_mismatch.finding(
                    f"collective #{i}: rank 0 called {ref.kind.name}, rank {rank} "
                    f"called {ev.kind.name}",
                    rank=rank,
                    seq=ev.seq,
                )
            elif ref.root != ev.root:
                yield collective_mismatch.finding(
                    f"collective #{i} ({ev.kind.name}): rank 0 says root {ref.root}, "
                    f"rank {rank} says root {ev.root}",
                    rank=rank,
                    seq=ev.seq,
                )


@rule(
    id="MPG104",
    code="invalid-edge-weight",
    severity=Severity.ERROR,
    category="graph",
    summary="local edges must carry finite, nonnegative weights",
    rationale=(
        "Local edge weights are observed elapsed intervals; a negative or "
        "non-finite weight would subtract time during propagation and poison "
        "every downstream completion time."
    ),
)
def invalid_edge_weight(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    g = ctx.graph
    if g is None:
        return
    for e in g.edges:
        bad_local = e.kind == EdgeKind.LOCAL and (e.weight < 0 or not math.isfinite(e.weight))
        bad_message = e.kind == EdgeKind.MESSAGE and math.isnan(e.weight)
        if bad_local or bad_message:
            src = g.nodes[e.src]
            yield invalid_edge_weight.finding(
                f"{'local' if e.kind == EdgeKind.LOCAL else 'message'} edge "
                f"{_node_name(g, e.src)} -> {_node_name(g, e.dst)} has weight {e.weight!r}",
                rank=src.rank if src.rank >= 0 else None,
                seq=src.seq if not src.is_virtual else None,
                edge=(e.src, e.dst),
            )


@rule(
    id="MPG105",
    code="orphan-node",
    severity=Severity.WARNING,
    category="graph",
    summary="every subevent node should connect to a rank chain",
    rationale=(
        "Propagation reaches nodes through the per-rank chains; a node no rank "
        "chain can reach holds a frozen completion time, so delays routed "
        "through it silently vanish from the analysis."
    ),
)
def orphan_node(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    g = ctx.graph
    if g is None or not g.nodes:
        return
    neighbors: list[list[int]] = [[] for _ in g.nodes]
    for e in g.edges:
        neighbors[e.src].append(e.dst)
        neighbors[e.dst].append(e.src)
    queue = deque(n.node_id for n in g.nodes if not n.is_virtual and neighbors[n.node_id])
    visited = set(queue)
    while queue:
        n = queue.popleft()
        for m in neighbors[n]:
            if m not in visited:
                visited.add(m)
                queue.append(m)
    for n in g.nodes:
        if n.node_id not in visited:
            kind = "virtual node" if n.is_virtual else "subevent"
            where = n.label or _node_name(g, n.node_id)
            yield orphan_node.finding(
                f"{kind} {where} (node {n.node_id}) is unreachable from every rank chain",
                rank=n.rank if n.rank >= 0 else None,
                seq=n.seq if not n.is_virtual else None,
                node=n.node_id,
            )
