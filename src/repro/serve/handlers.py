"""Endpoint bodies of the analysis daemon.

Each ``run_*`` function is the synchronous core of one POST endpoint:
it takes a live :class:`~repro.serve.scheduler.CacheEntry` (trace set +
built graph), the validated request, and the server config, and returns
the JSON-able ``result`` object of the response envelope.  They run in
worker threads (``asyncio.to_thread``), so the event loop never blocks
on a kernel; heavy fan-outs go through the existing process-pool
backend when the daemon was started with ``--jobs``.

**Bit-identity is the contract.**  Every result is byte-equal (after
JSON round-trip, which preserves floats exactly via shortest-repr) to
what the equivalent library call or CLI invocation produces:

* ``analyze``  = :func:`repro.core.montecarlo.monte_carlo` samples
* ``sweep``    = :func:`repro.core.sweep.sweep_scales` points
* ``diagnose`` = :func:`repro.diagnose.diagnosis_to_dict`
* ``metrics``  = :func:`repro.metrics.build_report`
* ``verify``   = :func:`repro.verify.verify_to_dict`

so the serving layer adds caching and transport, never a different
answer.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro import obs
from repro.core.montecarlo import monte_carlo
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.sweep import sweep_scales
from repro.noise.signature import MachineSignature
from repro.serve.scheduler import CacheEntry
from repro.serve.wire import ServeError
from repro.testing.faults import FAULT_EXIT_CODE

__all__ = ["HANDLERS", "build_config_for", "run_injection"]


def build_config_for(params: dict[str, Any]) -> BuildConfig:
    """The request's :class:`BuildConfig` (part of the build cache key)."""
    return BuildConfig(
        collective_mode=params.get("collective_mode", "hub"),
        eager_threshold=params.get("eager_threshold"),
    )


def _load_signature(request: dict[str, Any], required: bool = True) -> MachineSignature | None:
    sig = request["signature"]
    if sig is None:
        if required:
            raise ServeError(
                "bad-request", "this endpoint needs a 'signature' (inline dict or path)"
            )
        return None
    try:
        if isinstance(sig, dict):
            return MachineSignature.from_dict(sig)
        return MachineSignature.load(sig)
    except FileNotFoundError as exc:
        raise ServeError("input-error", f"signature not found: {exc}") from exc
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise ServeError("input-error", f"cannot load signature: {exc}") from exc


def _spec(request: dict[str, Any]) -> PerturbationSpec:
    params = request["params"]
    signature = _load_signature(request)
    assert signature is not None
    return PerturbationSpec(
        signature,
        seed=params.get("seed", 0),
        scale=params.get("scale", 1.0),
    )


def _mc_engine(params: dict[str, Any]) -> str:
    """Map the shared engine vocabulary onto monte_carlo's subset."""
    engine = params.get("engine", "auto")
    if engine == "streaming":
        raise ServeError("bad-request", "this endpoint requires a graph engine, not 'streaming'")
    return {"incore": "graph"}.get(engine, engine)


def run_analyze(entry: CacheEntry, request: dict[str, Any], server: Any) -> dict[str, Any]:
    """Monte-Carlo replicate distribution over the cached build."""
    params = request["params"]
    spec = _spec(request)
    replicates = params.get("replicates", 100)
    if replicates < 1:
        raise ServeError("bad-request", "params.replicates must be >= 1 for analyze")
    dist = monte_carlo(
        entry.build,
        spec,
        replicates=replicates,
        mode=params.get("mode", "additive"),
        jobs=server.jobs,
        engine=_mc_engine(params),
        policy=server.policy,
        checkpoint=server.checkpoint,
        resume=params.get("resume", True) and server.checkpoint is not None,
        coarsen=params.get("coarsen", "auto"),
    )
    q = dist.quantile([0.05, 0.5, 0.95])
    return {
        "replicates": dist.replicates,
        "nprocs": dist.nprocs,
        "seeds": [int(s) for s in dist.seeds],
        "samples": [[float(v) for v in row] for row in dist.samples],
        "summary": {
            "mean": dist.mean(),
            "std": dist.std(),
            "p5": float(q[0]),
            "p50": float(q[1]),
            "p95": float(q[2]),
        },
    }


def run_sweep(entry: CacheEntry, request: dict[str, Any], server: Any) -> dict[str, Any]:
    """Noise-scale ladder over the cached build."""
    params = request["params"]
    spec = _spec(request)
    scales = params.get("scales", [0.0, 0.25, 0.5, 1.0, 2.0, 4.0])
    result = sweep_scales(
        entry.traces,
        spec,
        scales,
        mode=params.get("mode", "additive"),
        engine=params.get("engine", "auto"),
        config=entry.build.config,
        jobs=server.jobs,
        policy=server.policy,
        checkpoint=server.checkpoint,
        resume=params.get("resume", True) and server.checkpoint is not None,
        coarsen=params.get("coarsen", "auto"),
        build=entry.build,
    )
    return {
        "points": [
            {
                "label": p.label,
                "x": float(p.x),
                "delays": [float(d) for d in p.delays],
                "mode": p.mode,
            }
            for p in result.points
        ],
    }


def run_diagnose(entry: CacheEntry, request: dict[str, Any], server: Any) -> dict[str, Any]:
    """MPG2xx diagnosis report (same dict the CLI renders as JSON)."""
    from repro.diagnose import DiagnoseConfig, diagnose_build, diagnosis_to_dict

    params = request["params"]
    replicates = params.get("replicates", 0)
    signature = _load_signature(request, required=replicates > 0)
    engine = params.get("engine", "auto")
    if engine == "streaming":
        raise ServeError("bad-request", "diagnose requires a graph engine, not 'streaming'")
    config = DiagnoseConfig(
        engine={"incore": "graph"}.get(engine, engine),
        coarsen=params.get("coarsen", "auto"),
        replicates=replicates,
        seed=params.get("seed", 0),
        scale=params.get("scale", 1.0),
        mode=params.get("mode", "additive"),
    )
    report = diagnose_build(entry.build, config, signature=signature, trace_set=entry.traces)
    return {"report": diagnosis_to_dict(report), "summary": report.summary()}


def run_metrics(entry: CacheEntry, request: dict[str, Any], server: Any) -> dict[str, Any]:
    """POP efficiency report (same dict ``repro-metrics --format json``
    renders; ``source`` is the request's trace naming, verbatim)."""
    from repro.metrics import build_report, pop_metrics, pop_timeline, trace_frame

    params = request["params"]
    windows = params.get("windows", 16)
    if request["traces"] is not None:
        source = f"{request['traces']}/{request['stem']}"
    else:
        source = f"upload/{request['stem']}"
    frame = trace_frame(entry.traces)
    report = build_report(
        pop_metrics(frame),
        pop_timeline(frame, windows),
        source=source,
        program=entry.traces.meta(0).program,
    )
    return {"report": report}


def run_verify(entry: CacheEntry, request: dict[str, Any], server: Any) -> dict[str, Any]:
    """MPG3xx verification report (same dict the CLI renders as JSON)."""
    from repro.verify import DEFAULT_QUANTILE, VerifyConfig, verify_build, verify_to_dict

    params = request["params"]
    replicates = params.get("replicates", 0)
    signature = _load_signature(request, required=replicates > 0)
    engine = params.get("engine", "auto")
    if engine in ("streaming", "incore"):
        engine = {"incore": "graph"}.get(engine, engine)
    if engine == "streaming":
        raise ServeError("bad-request", "verify requires a graph engine, not 'streaming'")
    config = VerifyConfig(
        quantile=params.get("quantile", DEFAULT_QUANTILE),
        scale=params.get("scale", 1.0),
        mode=params.get("mode", "additive"),
        coarsen=params.get("coarsen", "auto"),
        engine=engine,
        replicates=replicates,
        seed=params.get("seed", 0),
        matches=params.get("matches", True),
    )
    report = verify_build(entry.build, config, signature=signature, trace_set=entry.traces)
    return {"report": verify_to_dict(report), "summary": report.summary()}


#: endpoint -> handler body.  Dispatch owns validation, the build
#: cache, obs scoping, and error mapping; these own the analysis.
HANDLERS: dict[str, Callable[[CacheEntry, dict[str, Any], Any], dict[str, Any]]] = {
    "analyze": run_analyze,
    "sweep": run_sweep,
    "diagnose": run_diagnose,
    "metrics": run_metrics,
    "verify": run_verify,
}


def _exit_worker(payload: Any, item: Any) -> None:
    """Pool-worker body of the ``kill-worker`` injection: die without
    cleanup, exactly like an OOM-killed or segfaulted worker."""
    os._exit(FAULT_EXIT_CODE)


def run_injection(inject: str) -> None:
    """Execute one gated fault injection (``--allow-fault-injection``).

    ``error`` raises in the handler thread — the request must come back
    as a structured 500 while the daemon keeps serving.  ``kill-worker``
    sends real work to a process pool whose worker dies mid-chunk with
    a no-retry fail-fast policy — the resulting ``BrokenProcessPool``
    must surface as a structured error, and the *daemon* process must
    survive (the pool is the blast radius, not the event loop).
    """
    if inject == "error":
        raise RuntimeError("injected handler error (inject=error)")
    from repro.core.parallel import FaultPolicy, ProcessPoolBackend

    with obs.span("serve.inject", kind=inject):
        backend = ProcessPoolBackend(
            jobs=2,
            policy=FaultPolicy(retries=0, on_failure="fail", max_pool_restarts=0),
        )
        backend.map(_exit_worker, [0, 1])
    raise ServeError("internal", "kill-worker injection did not kill the pool")
