"""Event-window extraction from message-passing graphs.

Fig. 5-style visualization is only readable for small graphs; for a
long run you cut out a window of events (the same windowing idea the
streaming analyzer uses for memory, §6, applied to inspection).
:func:`extract_window` returns a standalone sub-graph containing every
rank's subevents with ``seq_lo <= seq < seq_hi``, the edges among them,
and any virtual nodes (collective hubs, butterfly rounds) touching the
window.  Delay annotations can be carried over for perturbed views.
"""

from __future__ import annotations

from repro import obs
from repro.core.builder import BuildResult
from repro.core.graph import MessagePassingGraph

__all__ = ["extract_window", "WindowedGraph"]


class WindowedGraph:
    """A window's sub-graph plus the id mapping back to the original."""

    def __init__(self, graph: MessagePassingGraph, original_ids: list):
        self.graph = graph
        self.original_ids = original_ids  # window node id -> original node id

    def map_delays(self, node_delay) -> list:
        """Project an original traversal's per-node delays onto the window
        (for ``to_dot(window.graph, node_delay=...)``)."""
        return [node_delay[orig] for orig in self.original_ids]


def extract_window(
    build: BuildResult, seq_lo: int, seq_hi: int, ranks=None
) -> WindowedGraph:
    """Cut the subevent window ``[seq_lo, seq_hi)`` out of a built graph.

    ``ranks`` restricts the window to a subset of ranks (default: all).
    Virtual nodes are included when connected to at least one included
    real node; edges are kept when both endpoints are included.
    """
    if seq_hi <= seq_lo:
        raise ValueError(f"empty window [{seq_lo}, {seq_hi})")
    g = build.graph
    rank_set = set(ranks) if ranks is not None else set(range(g.nprocs))

    def real_included(node) -> bool:
        return node.rank in rank_set and seq_lo <= node.seq < seq_hi

    included = {n.node_id for n in g.nodes if not n.is_virtual and real_included(n)}
    if not included:
        raise ValueError(f"window [{seq_lo}, {seq_hi}) selects no subevents")
    # Virtual nodes with at least one included neighbour come along.
    for n in g.nodes:
        if not n.is_virtual:
            continue
        neighbours = [g.edges[ei].src for ei in g.in_edge_ids(n.node_id)] + [
            g.edges[ei].dst for ei in g.out_edge_ids(n.node_id)
        ]
        if any(v in included for v in neighbours):
            included.add(n.node_id)

    window = MessagePassingGraph(g.nprocs)
    mapping: dict[int, int] = {}
    original_ids: list[int] = []
    for n in g.nodes:
        if n.node_id not in included:
            continue
        new_id = window.add_node(n.rank, n.seq, n.phase, n.kind, n.t_local, n.label)
        mapping[n.node_id] = new_id
        original_ids.append(n.node_id)
        # Preserve finalize anchors when they fall inside the window.
        if g.final_nodes[n.rank] == n.node_id if n.rank >= 0 else False:
            window.final_nodes[n.rank] = new_id

    for e in g.edges:
        if e.src in mapping and e.dst in mapping:
            window.add_edge(mapping[e.src], mapping[e.dst], e.kind, e.weight, e.delta, e.label)
    obs.add("window.extractions")
    obs.gauge_max("window.occupancy_hwm", len(window.nodes))
    return WindowedGraph(window, original_ids)
