"""Perturbation parameterization (§5 of the paper).

Distributions (parametric and empirical), fitting from microbenchmark
samples, synthetic OS-noise generators, and the machine-signature bundle
the analyzer consumes.
"""

from repro.noise.distributions import (
    ZERO,
    BernoulliSpike,
    Constant,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Normal,
    Pareto,
    RandomVariable,
    Scaled,
    Shifted,
    TruncatedNormal,
    Uniform,
    Weibull,
)
from repro.noise.empirical import Empirical, ecdf
from repro.noise.fitting import FitResult, fit_best
from repro.noise.models import (
    NO_NOISE,
    CompositeNoise,
    DistributionNoise,
    NoiseModel,
    NoNoise,
    PeriodicDaemon,
    RandomPreemption,
)
from repro.noise.signature import MachineSignature

__all__ = [
    "ZERO",
    "BernoulliSpike",
    "Constant",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Mixture",
    "Normal",
    "Pareto",
    "RandomVariable",
    "Scaled",
    "Shifted",
    "TruncatedNormal",
    "Uniform",
    "Weibull",
    "Empirical",
    "ecdf",
    "FitResult",
    "fit_best",
    "NO_NOISE",
    "CompositeNoise",
    "DistributionNoise",
    "NoiseModel",
    "NoNoise",
    "PeriodicDaemon",
    "RandomPreemption",
    "MachineSignature",
]
