"""PMPI-style tracing hook for the simulated runtime.

Plays the role of the paper's "lightweight PMPI wrapper" (§4): it
observes every MPI-level event the engine executes, converts the
engine's global virtual times to the recording rank's *local* clock, and
hands dense-sequence-numbered :class:`EventRecord` objects to a sink —
either in-memory lists (:class:`MemoryCollector`) or buffered per-rank
files (:class:`FileCollector` wrapping
:class:`repro.trace.writer.TraceSetWriter`).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.mpisim.clock import LocalClock, perfect_clocks
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace, TraceSet
from repro.trace.writer import TraceSetWriter

__all__ = ["BaseCollector", "MemoryCollector", "FileCollector"]


class BaseCollector:
    """Shared record-building logic; subclasses provide ``_sink``.

    Supports *patchable* records: a wildcard MPI_Irecv's resolved source,
    tag and size are only known when the message matches, which may be
    long after the call returned.  Real PMPI tracers obtain them from the
    eventual MPI_Status; we model that by letting the engine mark the
    IRECV record patchable and fill in the resolved fields later.  Per-
    rank emission order is preserved: records are held back from the sink
    until every earlier record of that rank is final.
    """

    def __init__(self, nprocs: int, clocks: Sequence[LocalClock] | None = None):
        if clocks is not None and len(clocks) != nprocs:
            raise ValueError(f"need {nprocs} clocks, got {len(clocks)}")
        self.nprocs = nprocs
        self.clocks = list(clocks) if clocks is not None else perfect_clocks(nprocs)
        self._seq = [0] * nprocs
        self._held: list[dict[int, EventRecord]] = [{} for _ in range(nprocs)]
        self._unpatched: list[set[int]] = [set() for _ in range(nprocs)]
        self._next_flush: list[int] = [0] * nprocs

    def hook(
        self,
        rank: int,
        kind: EventKind,
        t_start: float,
        t_end: float,
        *,
        peer: int = -1,
        tag: int = -1,
        nbytes: int = 0,
        req: int = -1,
        reqs: tuple = (),
        completed: tuple = (),
        root: int = -1,
        coll_seq: int = -1,
        recv_peer: int = -1,
        recv_tag: int = -1,
        recv_nbytes: int = 0,
        src_any: bool = False,
        tag_any: bool = False,
        patchable: bool = False,
    ) -> tuple:
        """Engine-facing callback (signature matches ``Engine._emit``).

        Returns a token ``(rank, seq)`` the engine may later pass to
        :meth:`patch` when ``patchable`` was set.
        """
        clock = self.clocks[rank]
        seq = self._seq[rank]
        record = EventRecord(
            rank=rank,
            seq=seq,
            kind=kind,
            t_start=clock.to_local(t_start),
            t_end=clock.to_local(t_end),
            peer=peer,
            tag=tag,
            nbytes=nbytes,
            req=req,
            reqs=reqs,
            completed=completed,
            root=root,
            coll_seq=coll_seq,
            recv_peer=recv_peer,
            recv_tag=recv_tag,
            recv_nbytes=recv_nbytes,
            src_any=src_any,
            tag_any=tag_any,
        )
        self._seq[rank] += 1
        self._held[rank][seq] = record
        if patchable:
            self._unpatched[rank].add(seq)
        self._flush(rank)
        return (rank, seq)

    def patch(self, token: tuple, *, peer: int, tag: int, nbytes: int) -> None:
        """Fill in a patchable record's resolved receive metadata."""
        rank, seq = token
        if seq not in self._unpatched[rank]:
            raise ValueError(f"record r{rank}#{seq} is not awaiting a patch")
        record = self._held[rank][seq]
        self._held[rank][seq] = replace(record, peer=peer, tag=tag, nbytes=nbytes)
        self._unpatched[rank].discard(seq)
        self._flush(rank)

    def finish(self) -> None:
        """Flush everything; never-resolved wildcards keep peer == -1."""
        for rank in range(self.nprocs):
            self._unpatched[rank].clear()
            self._flush(rank)

    def _flush(self, rank: int) -> None:
        held = self._held[rank]
        nxt = self._next_flush[rank]
        unpatched = self._unpatched[rank]
        while nxt in held and nxt not in unpatched:
            self._sink(held.pop(nxt))
            nxt += 1
        self._next_flush[rank] = nxt

    def _sink(self, record: EventRecord) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class MemoryCollector(BaseCollector):
    """Collect records in per-rank lists; expose them as a MemoryTrace."""

    def __init__(self, nprocs: int, clocks: Sequence[LocalClock] | None = None, program: str = ""):
        super().__init__(nprocs, clocks)
        self.program = program
        self.records: list[list[EventRecord]] = [[] for _ in range(nprocs)]

    def _sink(self, record: EventRecord) -> None:
        self.records[record.rank].append(record)

    def trace(self) -> MemoryTrace:
        self.finish()
        return MemoryTrace(self.records, program=self.program or "mpisim")


class FileCollector(BaseCollector):
    """Stream records into buffered per-rank trace files (§4 buffering)."""

    def __init__(
        self,
        directory: str | Path,
        stem: str,
        nprocs: int,
        clocks: Sequence[LocalClock] | None = None,
        program: str = "",
        buffer_events: int = 4096,
        binary: bool = False,
    ):
        super().__init__(nprocs, clocks)
        clock_params = {r: (c.offset, c.drift) for r, c in enumerate(self.clocks)}
        self.writer = TraceSetWriter(
            directory,
            stem,
            nprocs,
            program=program or "mpisim",
            buffer_events=buffer_events,
            binary=binary,
            clock_params=clock_params,
        )
        self.directory = Path(directory)
        self.stem = stem

    def _sink(self, record: EventRecord) -> None:
        self.writer.record(record)

    def close(self) -> None:
        self.finish()
        self.writer.close()

    def trace(self) -> TraceSet:
        self.close()
        return TraceSet.open(self.directory, self.stem)
