"""MPG2xx — the diagnosis rule pack.

Unlike the trace/graph rules (defect detection on inputs), diagnosis
rules interpret *analysis results*: they receive a
:class:`~repro.diagnose.engine.DiagnoseContext` carrying the extracted
critical path, the makespan attribution, and the anomaly report, and
re-express the interesting ones as findings so the existing lint
reporters (text / JSON / SARIF) and CI gates apply unchanged.

Severity policy: structural summaries are INFO (always emitted, so a
report is never empty); judgements that a specific rank is *wrong* —
a statistical outlier against its peers, or a serialized path through
one rank of a many-rank run — are WARNING, which the CI ``diagnose``
job gates on (``--fail-on warning``).  Thresholds live on
:class:`~repro.diagnose.engine.DiagnoseConfig` and are deliberately
conservative: a clean, structurally asymmetric app (master/worker,
boundary ranks) must produce zero warnings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.model import Finding, LintConfig, Severity
from repro.lint.registry import rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diagnose.engine import DiagnoseContext

__all__ = [
    "critical_path_summary",
    "bottleneck_rank",
    "bottleneck_primitive",
    "anomalous_rank",
    "load_imbalance",
    "noise_sensitive_rank",
]


@rule(
    "MPG200",
    "critical-path-summary",
    Severity.INFO,
    "diagnosis",
    "Critical path summary",
    "Where the end-to-end makespan went: the longest weighted chain of "
    "observed intervals, its sink rank, and the dominant contributors. "
    "Always emitted so every diagnosis report states its baseline.",
)
def critical_path_summary(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    cp, attr = ctx.cp, ctx.attribution
    rank, rshare = attr.dominant_rank()
    prim, pshare = attr.dominant_primitive(exclude=())
    r = critical_path_summary
    yield r.finding(
        f"critical path: {cp.total_cost:,.0f} cy over {len(cp.edges)} edges into "
        f"rank {cp.sink_rank}; rank {rank} carries {rshare:.0%}, "
        f"largest bucket '{prim}' {pshare:.0%}",
        rank=cp.sink_rank,
    )


@rule(
    "MPG201",
    "bottleneck-rank",
    Severity.WARNING,
    "diagnosis",
    "One rank dominates the critical path",
    "Nearly the whole critical path runs through a single rank of a "
    "multi-rank run while every other rank's own path is much shorter: "
    "the program is serialized on that rank, and speeding up any other "
    "rank cannot improve the makespan.  A symmetric app whose equally-"
    "long path merely *stays* on one rank does not fire — the runner-up "
    "rank's path cost must trail the makespan by the serialization "
    "margin.",
)
def bottleneck_rank(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    attr, cp = ctx.attribution, ctx.cp
    if ctx.build.graph.nprocs < 2 or attr.makespan <= 0:
        return
    rank, share = attr.dominant_rank()
    runner_up = cp.runner_up_ratio()
    if (
        rank >= 0
        and share >= ctx.config.bottleneck_rank_share
        and runner_up < ctx.config.serialization_margin
    ):
        r = bottleneck_rank
        yield r.finding(
            f"rank {rank} carries {share:.1%} of the {attr.makespan:,.0f} cy "
            f"critical path and the runner-up rank's path is only "
            f"{runner_up:.0%} as long: the run is serialized on rank {rank}",
            rank=rank,
        )


@rule(
    "MPG202",
    "bottleneck-primitive",
    Severity.INFO,
    "diagnosis",
    "One primitive dominates non-compute path time",
    "A single message-passing primitive accounts for most of the "
    "non-compute time on the critical path — the first place to look "
    "for an algorithmic or configuration fix.",
)
def bottleneck_primitive(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    attr = ctx.attribution
    non_compute = attr.makespan - attr.by_primitive.get("compute", 0.0)
    if non_compute <= 0:
        return
    prim, share = attr.dominant_primitive()
    if not prim:
        return
    frac = attr.by_primitive[prim] / non_compute
    if frac >= ctx.config.bottleneck_primitive_share:
        r = bottleneck_primitive
        yield r.finding(
            f"'{prim}' is {frac:.1%} of the non-compute critical-path time "
            f"({attr.by_primitive[prim]:,.0f} of {non_compute:,.0f} cy)",
            rank=ctx.cp.sink_rank,
        )


@rule(
    "MPG210",
    "anomalous-rank",
    Severity.WARNING,
    "diagnosis",
    "Rank is a statistical outlier against its role peers",
    "A rank's compute total sits far outside the distribution of "
    "structurally identical peer ranks — the faulty-"
    "process signature of Okita et al. (arXiv:cs/0310015).  Flagged "
    "only with enough peers and both a statistical and a relative "
    "excess, so structural asymmetry alone never fires.",
)
def anomalous_rank(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    r = anomalous_rank
    for a in ctx.anomalies.anomalies:
        if a.metric == "replicate-delay":
            continue  # MPG212's jurisdiction
        yield r.finding(a.describe(), rank=a.rank)


@rule(
    "MPG211",
    "load-imbalance",
    Severity.INFO,
    "diagnosis",
    "Compute totals are spread far beyond the mean",
    "The busiest rank computes much more than the average rank.  Not "
    "necessarily a defect (pipelines and masters are legitimately "
    "imbalanced), but the quantity an optimizer would attack first.",
)
def load_imbalance(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    computes = [p.compute for p in ctx.anomalies.profiles]
    if len(computes) < 2:
        return
    mean = sum(computes) / len(computes)
    if mean <= 0:
        return
    peak = max(computes)
    ratio = peak / mean
    if ratio >= ctx.config.imbalance_ratio:
        r = load_imbalance
        rank = computes.index(peak)
        yield r.finding(
            f"rank {rank} computes {peak:,.0f} cy, {ratio:.2f}x the "
            f"{mean:,.0f} cy mean (threshold {ctx.config.imbalance_ratio:.1f}x)",
            rank=rank,
        )


@rule(
    "MPG212",
    "noise-sensitive-rank",
    Severity.INFO,
    "diagnosis",
    "Replicate delays concentrate on one rank",
    "Across Monte-Carlo replicates, sampled perturbations accumulate "
    "disproportionately on one rank relative to its peers: its region "
    "of the graph propagates noise instead of absorbing it (§4.2).",
)
def noise_sensitive_rank(ctx: "DiagnoseContext", config: LintConfig) -> Iterator[Finding]:
    r = noise_sensitive_rank
    for a in ctx.anomalies.anomalies:
        if a.metric != "replicate-delay":
            continue
        yield r.finding(
            f"rank {a.rank} mean replicate delay {a.value:,.0f} cy is "
            f"{a.excess:.2f}x its {a.peers} peers' median {a.peer_median:,.0f} cy "
            f"(robust z = {a.z:.1f})",
            rank=a.rank,
        )
