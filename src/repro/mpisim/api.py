"""Operation descriptors for simulated rank programs.

A rank program is a Python generator taking a :class:`RankInfo` and
yielding op descriptors; the engine executes each op in virtual time and
sends the op's result back into the generator::

    def ring(me: RankInfo):
        yield Compute(50_000)
        if me.rank == 0:
            yield Send(dest=1, nbytes=1024)
            status = yield Recv(source=me.size - 1)
        ...

This is the mpi4py-shaped blocking/nonblocking/collective subset of
MPI-1 that §3 of the paper models; ops map one-to-one onto
:class:`repro.trace.events.EventKind` entries in the emitted trace.

``ANY_SOURCE``/``ANY_TAG`` follow MPI wildcard semantics; the trace
records the *resolved* peer and tag (the analyzer never sees wildcards,
because a completed run has none — §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "RankInfo",
    "Op",
    "Compute",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Waitsome",
    "Test",
    "Sendrecv",
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Gather",
    "Scatter",
    "Allgather",
    "Alltoall",
    "Scan",
    "ReduceScatter",
    "COLLECTIVE_OPS",
    "SEND_MODES",
]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class RankInfo:
    """What a rank program knows about itself (à la ``COMM_WORLD``)."""

    rank: int
    size: int


class Op:
    """Marker base class for all yieldable operations."""

    __slots__ = ()


def _check_nbytes(nbytes: int) -> None:
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")


def _check_tag(tag: int) -> None:
    if tag < 0 and tag != ANY_TAG:
        raise ValueError(f"tag must be >= 0 (or ANY_TAG), got {tag}")


@dataclass(frozen=True)
class Compute(Op):
    """Local computation of ``cycles`` virtual cycles (a c_i phase, Fig. 1)."""

    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"compute cycles must be >= 0, got {self.cycles}")


SEND_MODES = ("standard", "synchronous", "buffered", "ready")


@dataclass(frozen=True)
class Send(Op):
    """Blocking send (MPI_Send family; §3.1.1's three forms plus standard).

    ``mode``:

    * ``"standard"`` — MPI_Send: synchronous above the runtime's eager
      threshold, buffered (completes locally) at or below it;
    * ``"synchronous"`` — MPI_Ssend: always waits for the matching
      receive (rendezvous regardless of size);
    * ``"buffered"`` — MPI_Bsend: always completes after local copy;
    * ``"ready"`` — MPI_Rsend: requires the receive to be already
      posted (erroneous otherwise, which the engine reports).
    """

    dest: int
    nbytes: int = 0
    tag: int = 0
    mode: str = "standard"

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)
        _check_tag(self.tag)
        if self.mode not in SEND_MODES:
            raise ValueError(f"send mode must be one of {SEND_MODES}, got {self.mode!r}")


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive (MPI_Recv).  Result: a :class:`~repro.mpisim.request.Status`."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG

    def __post_init__(self) -> None:
        _check_tag(self.tag)


@dataclass(frozen=True)
class Isend(Op):
    """Nonblocking send (MPI_Isend).  Result: a Request."""

    dest: int
    nbytes: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)
        _check_tag(self.tag)


@dataclass(frozen=True)
class Irecv(Op):
    """Nonblocking receive (MPI_Irecv).  Result: a Request."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG

    def __post_init__(self) -> None:
        _check_tag(self.tag)


@dataclass(frozen=True)
class Wait(Op):
    """Block until ``request`` completes (MPI_Wait).  Result: Status."""

    request: object


@dataclass(frozen=True)
class Waitall(Op):
    """Block until every request completes (MPI_Waitall).  Result: list[Status]."""

    requests: tuple

    def __init__(self, requests: Sequence):
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Waitsome(Op):
    """Block until at least one request completes (MPI_Waitsome).
    Result: list of completed Requests."""

    requests: tuple

    def __init__(self, requests: Sequence):
        reqs = tuple(requests)
        if not reqs:
            raise ValueError("Waitsome requires at least one request")
        object.__setattr__(self, "requests", reqs)


@dataclass(frozen=True)
class Test(Op):
    """Nonblocking completion probe (MPI_Test).
    Result: ``(done: bool, status or None)``."""

    request: object


@dataclass(frozen=True)
class Sendrecv(Op):
    """Combined send+receive (MPI_Sendrecv); deadlock-free exchange."""

    dest: int
    send_nbytes: int = 0
    send_tag: int = 0
    source: int = ANY_SOURCE
    recv_tag: int = ANY_TAG

    def __post_init__(self) -> None:
        _check_nbytes(self.send_nbytes)
        _check_tag(self.send_tag)
        _check_tag(self.recv_tag)


@dataclass(frozen=True)
class Barrier(Op):
    """MPI_Barrier."""


@dataclass(frozen=True)
class Bcast(Op):
    """MPI_Bcast of ``nbytes`` from ``root``."""

    root: int = 0
    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Reduce(Op):
    """MPI_Reduce of ``nbytes`` to ``root``."""

    root: int = 0
    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Allreduce(Op):
    """MPI_Allreduce of ``nbytes``."""

    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Gather(Op):
    """MPI_Gather of ``nbytes`` per rank to ``root``."""

    root: int = 0
    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Scatter(Op):
    """MPI_Scatter of ``nbytes`` per rank from ``root``."""

    root: int = 0
    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Allgather(Op):
    """MPI_Allgather of ``nbytes`` per rank."""

    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Alltoall(Op):
    """MPI_Alltoall of ``nbytes`` per rank pair."""

    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class Scan(Op):
    """MPI_Scan: inclusive prefix reduction of ``nbytes``."""

    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


@dataclass(frozen=True)
class ReduceScatter(Op):
    """MPI_Reduce_scatter: reduce + scatter of ``nbytes`` per rank."""

    nbytes: int = 0

    def __post_init__(self) -> None:
        _check_nbytes(self.nbytes)


COLLECTIVE_OPS = (
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Scan,
    ReduceScatter,
)
