"""Runtime message matching for the simulated MPI layer.

Pairs in-flight messages with posted receives following MPI matching
rules: a receive with (source, tag) — either possibly wildcarded —
matches the earliest-posted pending message from a matching channel;
pending messages are kept in send-initiation order, so per-channel
non-overtaking holds by construction.  This is the property the
analyzer's order-based matcher (§4.1) later relies on when it re-pairs
events from the traces alone.

The matcher only *pairs*; completion-time arithmetic stays in the
engine, which knows the network model and noise state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mpisim.api import ANY_SOURCE, ANY_TAG

__all__ = ["SimMessage", "PostedRecv", "Matcher"]


@dataclass
class SimMessage:
    """One message in flight from ``src`` to ``dst``.

    For eager messages ``ready`` is the arrival time of the payload at
    the destination; for synchronous (rendezvous) messages it is the
    time the *sender* became ready to start the transfer (the transfer
    itself cannot begin until a receive is matched).
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    sync: bool
    ready: float
    on_send_end: Optional[Callable[[float], None]] = None


@dataclass
class PostedRecv:
    """A receive posted on ``dst`` awaiting a matching message."""

    dst: int
    source: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    ready: float
    on_complete: Callable[[float, "SimMessage"], None] = field(repr=False, default=None)

    def matches(self, msg: SimMessage) -> bool:
        if msg.dst != self.dst:
            return False
        if self.source != ANY_SOURCE and msg.src != self.source:
            return False
        if self.tag != ANY_TAG and msg.tag != self.tag:
            return False
        return True


class Matcher:
    """Per-destination pending-message and posted-receive queues."""

    def __init__(self, nprocs: int):
        self._pending: list[list[SimMessage]] = [[] for _ in range(nprocs)]
        self._posted: list[list[PostedRecv]] = [[] for _ in range(nprocs)]

    def add_message(self, msg: SimMessage) -> Optional[tuple[SimMessage, PostedRecv]]:
        """Register a new message; return a pair if a posted recv matches."""
        posted = self._posted[msg.dst]
        for i, recv in enumerate(posted):
            if recv.matches(msg):
                del posted[i]
                return msg, recv
        self._pending[msg.dst].append(msg)
        return None

    def add_recv(self, recv: PostedRecv) -> Optional[tuple[SimMessage, PostedRecv]]:
        """Post a receive; return a pair if a pending message matches."""
        pending = self._pending[recv.dst]
        for i, msg in enumerate(pending):
            if recv.matches(msg):
                del pending[i]
                return msg, recv
        self._posted[recv.dst].append(recv)
        return None

    def has_posted_recv(self, src: int, dst: int, tag: int) -> bool:
        """Whether a receive matching ``(src, dst, tag)`` is already
        posted (MPI_Rsend's readiness condition)."""
        probe = SimMessage(src=src, dst=dst, tag=tag, nbytes=0, sync=False, ready=0.0)
        return any(r.matches(probe) for r in self._posted[dst])

    # -- diagnostics (deadlock reports, tests) ---------------------------------
    def pending_count(self) -> int:
        return sum(len(q) for q in self._pending)

    def posted_count(self) -> int:
        return sum(len(q) for q in self._posted)

    def describe_stuck(self) -> list[str]:
        """Human-readable lines for every unmatched message/receive."""
        lines = []
        for dst, msgs in enumerate(self._pending):
            for m in msgs:
                lines.append(
                    f"unmatched message {m.src}->{dst} tag={m.tag} ({m.nbytes}B, "
                    f"{'sync' if m.sync else 'eager'})"
                )
        for dst, recvs in enumerate(self._posted):
            for r in recvs:
                src = "ANY" if r.source == ANY_SOURCE else r.source
                tag = "ANY" if r.tag == ANY_TAG else r.tag
                lines.append(f"unmatched recv on {dst} from {src} tag={tag}")
        return lines
