"""ABL4 — delta-application semantics: additive (§4.2) vs Eq.-1-literal
threshold mode, plus the §7 negative-noise exploration.

The paper's prose describes additive propagation while Eq. (1) reads as
a max(observed, δ) threshold; DESIGN.md commits to additive as default
and ships both.  This ablation quantifies the gap and exercises the
reduced-noise (negative delta) extension with its clamping behaviour.
"""

import time

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, check_correctness, propagate
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature


def test_abl_modes(benchmark):
    trace = run(token_ring(TokenRingParams(traversals=6)), nprocs=8, seed=0).trace
    build = build_graph(trace)
    sig = MachineSignature(os_noise=Exponential(200.0), latency=Exponential(80.0))

    rows = []
    thr_over_add = {}
    t0 = time.perf_counter()
    for scale in (0.25, 1.0, 4.0):
        spec = PerturbationSpec(sig, seed=3, scale=scale)
        add = propagate(build, spec, mode="additive")
        thr = propagate(build, spec, mode="threshold")
        thr_over_add[str(scale)] = thr.max_delay / add.max_delay
        rows.append(
            [
                scale,
                f"{add.max_delay:,.0f}",
                f"{thr.max_delay:,.0f}",
                f"{thr.max_delay / add.max_delay:.2f}",
            ]
        )
        # Threshold absorbs what fits inside observed intervals, so it can
        # never exceed additive.
        assert thr.max_delay <= add.max_delay + 1e-9

    out = table(
        ["scale", "additive max delay", "threshold max delay", "thr/add"],
        rows,
        widths=[6, 18, 20, 8],
    )

    # --- §7: negative deltas (what if the machine were QUIETER?) -----------
    neg_rows = []
    for scale in (-0.5, -1.0, -4.0):
        spec = PerturbationSpec(sig, seed=3, scale=scale)
        res = propagate(build, spec, mode="additive")
        report = check_correctness(build, res)
        assert report.ok  # clamping preserves order (§4.3)
        assert res.max_delay <= 0.0
        neg_rows.append([scale, f"{res.mean_delay:,.0f}", res.clamped_edges])
    out += "\n\nnegative-noise exploration (§7):\n" + table(
        ["scale", "mean delay (speedup)", "clamped edges"],
        neg_rows,
        widths=[6, 20, 14],
    )
    # Speedups saturate: scaling -1 → -4 cannot shrink intervals past zero,
    # so the gain grows sublinearly and the clamp count rises.
    assert neg_rows[2][2] > neg_rows[0][2]
    emit(
        "abl_modes",
        out,
        params={"nprocs": 8, "traversals": 6, "scales": [0.25, 1.0, 4.0]},
        timings={"ablation_s": time.perf_counter() - t0},
        metrics={
            "threshold_over_additive": thr_over_add,
            "clamped_edges_by_scale": {str(r[0]): r[2] for r in neg_rows},
        },
    )

    spec = PerturbationSpec(sig, seed=3)
    benchmark(propagate, build, spec, "threshold")
