"""Critical-path extraction: the longest weighted path into a finalize.

Where :func:`repro.core.analysis.critical_path` backtracks the binding
chain of a *perturbed* traversal (which edges carried the sampled
delay), this module answers the unperturbed question: which chain of
observed intervals determined the run's end-to-end makespan?  The path
is the longest weighted path from any source to the latest finalize,
computed over the per-edge base weights (optionally plus sampled
deltas) with full predecessor tracking so the chain itself — not just
its length — is recoverable.

Three engines compute the same path bit-for-bit:

``compiled``
    :meth:`~repro.core.compiled.CompiledPlan.longest_path` — the
    vectorized level-schedule kernel (replicate-batched).
``incore``
    :func:`~repro.core.traversal.longest_weighted_path` — the scalar
    reference over the Kahn topological order.
``graph``
    A memoized depth-first walk over the graph object itself, with no
    precomputed order at all.

All three break ties toward the *first* in-edge in
``graph.in_edge_ids`` order and compare identical float values, so the
extracted edge sequence is exactly equal across engines — the property
the test suite pins down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.compiled import compiled_plan
from repro.core.traversal import longest_weighted_path

__all__ = ["ENGINES", "CriticalPathExtract", "extract_critical_path", "path_costs"]

ENGINES = ("auto", "compiled", "incore", "graph")


@dataclass(frozen=True)
class CriticalPathExtract:
    """The longest weighted source-to-finalize chain of one build.

    ``edges`` are edge ids in source-to-sink order; ``nodes`` the
    visited node ids (``len(edges) + 1`` entries); ``costs`` the
    per-edge cost actually used (aligned with ``edges``).
    """

    sink_rank: int
    total_cost: float
    edges: tuple[int, ...]
    nodes: tuple[int, ...]
    costs: tuple[float, ...]
    final_costs: tuple[float, ...]  # per-rank path cost into each finalize
    engine: str

    def __len__(self) -> int:
        return len(self.edges)

    def runner_up_ratio(self) -> float:
        """Second-longest per-rank path cost relative to the makespan.

        Near 1.0 the run is balanced (other ranks' paths are just as
        long, the sink was a tie-break); near 0.0 every other rank
        finishes far earlier — the serialization signature.
        """
        others = [
            c for r, c in enumerate(self.final_costs) if r != self.sink_rank
        ]
        if not others or self.total_cost <= 0:
            return 1.0
        return max(others) / self.total_cost

    def as_dict(self) -> dict:
        return {
            "sink_rank": self.sink_rank,
            "total_cost": self.total_cost,
            "edges": list(self.edges),
            "nodes": list(self.nodes),
            "costs": list(self.costs),
            "final_costs": list(self.final_costs),
            "engine": self.engine,
        }


def path_costs(build: BuildResult, deltas: Sequence[float] | None = None) -> np.ndarray:
    """Per-edge path costs: observed weights, plus sampled deltas if given."""
    w = np.array([e.weight for e in build.graph.edges], dtype=np.float64)
    if deltas is not None:
        d = np.asarray(deltas, dtype=np.float64)
        if d.shape != w.shape:
            raise ValueError(f"deltas shape {d.shape} does not match {w.shape} edges")
        w = w + d
    return w


def _graph_engine(build: BuildResult, costs: np.ndarray) -> tuple[list, list]:
    """Memoized iterative DFS — no precomputed order, same tie-break."""
    g = build.graph
    edges = g.edges
    n = len(g.nodes)
    L = [0.0] * n
    pred = [-1] * n
    done = [False] * n
    with obs.span("longest_path", engine="graph"):
        for start in range(n):
            if done[start]:
                continue
            stack = [start]
            while stack:
                v = stack[-1]
                if done[v]:
                    stack.pop()
                    continue
                missing = [
                    edges[ei].src for ei in g.in_edge_ids(v) if not done[edges[ei].src]
                ]
                if missing:
                    stack.extend(missing)
                    continue
                best = -math.inf
                binding = -1
                for ei in g.in_edge_ids(v):
                    c = L[edges[ei].src] + costs[ei]
                    if c > best:
                        best = c
                        binding = ei
                if binding >= 0:
                    L[v] = best
                    pred[v] = binding
                done[v] = True
                stack.pop()
    return L, pred


def extract_critical_path(
    build: BuildResult,
    deltas: Sequence[float] | None = None,
    engine: str = "auto",
) -> CriticalPathExtract:
    """Extract the critical path ending at the latest finalize.

    ``engine`` selects the longest-path kernel (``auto`` = compiled);
    the result is identical whichever runs.  The sink is the finalize
    node with the largest path cost, ties broken toward the lowest
    rank.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    g = build.graph
    costs = path_costs(build, deltas)
    resolved = "compiled" if engine == "auto" else engine

    with obs.span("diagnose.path", engine=resolved):
        if resolved == "compiled":
            Lm, predm = compiled_plan(build).longest_path(costs[None, :])
            L, pred = Lm[0], predm[0]
        elif resolved == "incore":
            L, pred = longest_weighted_path(build, costs.tolist())
        else:
            L, pred = _graph_engine(build, costs)

        sink = None
        sink_rank = -1
        best = -math.inf
        final_costs = [0.0] * g.nprocs
        for rank in range(g.nprocs):
            nid = g.final_node_of(rank)
            if nid is None:
                continue
            final_costs[rank] = float(L[nid])
            if final_costs[rank] > best:
                best = final_costs[rank]
                sink = nid
                sink_rank = rank
        if sink is None:
            raise ValueError("graph has no finalize nodes: nothing to diagnose")

        path: list[int] = []
        node = sink
        while True:
            ei = int(pred[node])
            if ei < 0:
                break
            path.append(ei)
            node = g.edges[ei].src
        path.reverse()
        nodes = [node] + [g.edges[ei].dst for ei in path]
        obs.span_add("diagnose.path_edges", len(path))

    return CriticalPathExtract(
        sink_rank=sink_rank,
        total_cost=best,
        edges=tuple(path),
        nodes=tuple(nodes),
        costs=tuple(float(costs[ei]) for ei in path),
        final_costs=tuple(final_costs),
        engine=resolved,
    )
