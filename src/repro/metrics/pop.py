"""Whole-run POP-style efficiency metrics from columnar frames.

The POP (Performance Optimisation and Productivity) hierarchy — as
used time-resolved by Haldar (arXiv:2512.01764) — decomposes parallel
efficiency multiplicatively.  With per-rank *useful* (compute) time
``u_r``, per-rank runtime, and run length ``T = max_r runtime_r``:

====================  =====================================  =========
metric                definition                             identity
====================  =====================================  =========
parallel efficiency   PE    = mean(u) / T                    PE = LB × CommE
load balance          LB    = mean(u) / max(u)
communication eff.    CommE = max(u) / T                     CommE = SerE × TE
serialization eff.    SerE  = max(u) / T_ideal
transfer efficiency   TE    = T_ideal / T
====================  =====================================  =========

``T_ideal`` is the run length on an *ideal network* (zero latency,
infinite bandwidth, zero call overheads) — obtained here by reusing
the existing Dimemas replay (:func:`repro.baselines.dimemas.replay`)
with :func:`ideal_params`.  Everything above ``T_ideal`` is blamed on
data transfer; everything between ``T_ideal`` and ``max(u)`` is
dependency serialization.

Useful time is what the trace records *between* MPI events: the gaps
``t_start[i] - t_end[i-1]`` on each rank's own clock.  Per §4.1 the
trace's timestamps are local per rank and must never be compared
across ranks — all quantities here are per-rank durations or ratios
of such durations, which stay clock-safe.

All computation is vectorized over :class:`~repro.metrics.frames.Frame`
columns (``np.bincount`` / ``ufunc.at``); there is no per-event Python
loop in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.metrics.frames import Frame, trace_frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.reader import TraceSource

__all__ = [
    "PopMetrics",
    "RankActivity",
    "ideal_params",
    "ideal_runtime",
    "pop_metrics",
    "rank_activity",
]


@dataclass(frozen=True)
class RankActivity:
    """Per-rank activity totals, all on each rank's own clock.

    ``runtime = last t_end - first t_start``; ``comm`` is time inside
    MPI events; ``useful`` is the sum of inter-event gaps (clamped at
    zero per gap, so overlapping events never produce negative useful
    time).  Ranks with no events have all-zero rows.
    """

    nprocs: int
    events: np.ndarray  # (nprocs,) int64 event counts
    runtime: np.ndarray  # (nprocs,) float64
    useful: np.ndarray  # (nprocs,) float64
    comm: np.ndarray  # (nprocs,) float64
    first_start: np.ndarray  # (nprocs,) float64 (0 for empty ranks)

    @property
    def run_length(self) -> float:
        """T — the longest per-rank runtime."""
        return float(self.runtime.max()) if self.nprocs else 0.0


def _resolve_frame(trace: "TraceSource | Frame", nprocs: int | None = None) -> tuple[Frame, int]:
    if not isinstance(trace, Frame):
        trace = trace_frame(trace)
    n = nprocs if nprocs is not None else trace.meta.get("nprocs")
    if n is None:
        rank = trace["rank"]
        n = int(rank.max()) + 1 if len(rank) else 0
    return trace, int(n)


def rank_activity(trace: "TraceSource | Frame", nprocs: int | None = None) -> RankActivity:
    """Vectorized per-rank activity totals for a trace (set or frame).

    Rows must be grouped by rank in stream (time) order — the layout
    :func:`~repro.metrics.frames.trace_frame` produces.  Frames with a
    decreasing rank column are re-sorted defensively.
    """
    frame, nprocs = _resolve_frame(trace, nprocs)
    rank = frame["rank"]
    if len(rank) and np.any(np.diff(rank) < 0):
        frame = frame.sort_by("rank", "seq")
        rank = frame["rank"]
    t_start, t_end = frame["t_start"], frame["t_end"]

    events = np.bincount(rank, minlength=nprocs).astype(np.int64)
    comm = np.bincount(rank, weights=frame["duration"], minlength=nprocs)

    first = np.full(nprocs, np.inf)
    np.minimum.at(first, rank, t_start)
    last = np.full(nprocs, -np.inf)
    np.maximum.at(last, rank, t_end)
    empty = events == 0
    first[empty] = 0.0
    last[empty] = 0.0
    runtime = last - first

    # Same-rank inter-event gaps = useful (compute) time.
    if len(rank) > 1:
        same = rank[1:] == rank[:-1]
        gaps = np.maximum(t_start[1:] - t_end[:-1], 0.0)[same]
        useful = np.bincount(rank[1:][same], weights=gaps, minlength=nprocs)
    else:
        useful = np.zeros(nprocs)
    return RankActivity(
        nprocs=nprocs,
        events=events,
        runtime=runtime,
        useful=useful,
        comm=comm,
        first_start=first,
    )


@dataclass(frozen=True)
class PopMetrics:
    """Whole-run POP metrics (see module docstring for definitions).

    Degenerate runs keep the identities exact: with no useful time
    anywhere, ``LB = 1`` and ``CommE = 0``; with ``T = 0`` every
    efficiency is 0 (and LB is 1).
    """

    activity: RankActivity
    runtime: float  # T
    parallel_efficiency: float
    load_balance: float
    comm_efficiency: float
    ideal_run_length: float | None = None  # T_ideal (when computed)
    serialization_efficiency: float | None = None
    transfer_efficiency: float | None = None

    @property
    def nprocs(self) -> int:
        return self.activity.nprocs

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "nprocs": self.nprocs,
            "runtime": self.runtime,
            "parallel_efficiency": self.parallel_efficiency,
            "load_balance": self.load_balance,
            "comm_efficiency": self.comm_efficiency,
            "rank_useful": [float(x) for x in self.activity.useful],
            "rank_comm": [float(x) for x in self.activity.comm],
            "rank_runtime": [float(x) for x in self.activity.runtime],
            "rank_events": [int(x) for x in self.activity.events],
        }
        if self.ideal_run_length is not None:
            d["ideal_runtime"] = self.ideal_run_length
            d["serialization_efficiency"] = self.serialization_efficiency
            d["transfer_efficiency"] = self.transfer_efficiency
        return d


def _efficiencies(useful: np.ndarray, length: float) -> tuple[float, float, float]:
    """(PE, LB, CommE) for per-rank useful times over interval ``length``."""
    if not len(useful):
        return 0.0, 1.0, 0.0
    mean_u = float(useful.mean())
    max_u = float(useful.max())
    lb = mean_u / max_u if max_u > 0 else 1.0
    comm_e = max_u / length if length > 0 else 0.0
    pe = mean_u / length if length > 0 else 0.0
    return pe, lb, comm_e


def pop_metrics(
    trace: "TraceSource | Frame",
    *,
    nprocs: int | None = None,
    ideal: float | None = None,
) -> PopMetrics:
    """Whole-run POP metrics for a trace set or pre-built event frame.

    Pass ``ideal=`` an ideal-network run length (from
    :func:`ideal_runtime`) to additionally split CommE into
    serialization × transfer efficiency.
    """
    act = rank_activity(trace, nprocs)
    T = act.run_length
    pe, lb, comm_e = _efficiencies(act.useful, T)
    ser_e = trans_e = None
    if ideal is not None:
        max_u = float(act.useful.max()) if act.nprocs else 0.0
        ser_e = max_u / ideal if ideal > 0 else 0.0
        trans_e = ideal / T if T > 0 else 0.0
    return PopMetrics(
        activity=act,
        runtime=T,
        parallel_efficiency=pe,
        load_balance=lb,
        comm_efficiency=comm_e,
        ideal_run_length=ideal,
        serialization_efficiency=ser_e,
        transfer_efficiency=trans_e,
    )


def ideal_params() -> "ReplayParams":
    """Dimemas parameters for the ideal network: zero latency,
    effectively infinite bandwidth (the network model requires a finite
    value; 1e18 B/cy makes payload time < 1e-9 cy for any real
    message), zero MPI overheads, unchanged compute."""
    from repro.baselines.dimemas import ReplayParams

    return ReplayParams(
        latency=0.0,
        bandwidth=1e18,
        send_overhead=0.0,
        recv_overhead=0.0,
        eager_threshold=1 << 62,
        cpu_factor=1.0,
        call_overhead=0.0,
    )


def ideal_runtime(trace_set: "TraceSource") -> float:
    """T_ideal — the run length replayed on the ideal network.

    Requires a complete, well-formed mpisim-style trace (the Dimemas
    replay walks the message-matching protocol); imported external
    traces generally cannot be replayed.
    """
    from repro.baselines.dimemas import replay

    return float(replay(trace_set, ideal_params()).makespan)
