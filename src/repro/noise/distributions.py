"""Random-variable primitives used to parameterize simulated perturbations.

Section 5 of the paper treats every perturbation parameter (operating
system noise, message latency, bandwidth) as a random variable whose
distribution is either an *assumed* parametric family with parameters
estimated from microbenchmark data, or an *empirical* distribution built
directly from the samples (see :mod:`repro.noise.empirical`).

Every distribution here implements the :class:`RandomVariable` protocol:

``sample(rng)``
    one draw (float) using the supplied generator;
``sample_n(rng, n)``
    vectorized draws as a ``numpy`` array;
``mean()`` / ``var()``
    analytic moments where defined.

All distributions are immutable and hash on their parameters so that
perturbation specs can be compared and stored in experiment histories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro._util import check_nonnegative, check_positive

__all__ = [
    "RandomVariable",
    "Constant",
    "Uniform",
    "Exponential",
    "Normal",
    "TruncatedNormal",
    "LogNormal",
    "Gamma",
    "Pareto",
    "Weibull",
    "BernoulliSpike",
    "Mixture",
    "Shifted",
    "Scaled",
    "ZERO",
]


@runtime_checkable
class RandomVariable(Protocol):
    """Protocol all perturbation distributions satisfy."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw a single value."""

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values as a float array."""

    def mean(self) -> float:
        """Analytic (or estimated) expectation."""

    def var(self) -> float:
        """Analytic (or estimated) variance."""


class _Base:
    """Mixin providing ``sample`` in terms of ``sample_n``."""

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_n(rng, 1)[0])

    # Convenience combinators -------------------------------------------------
    def shifted(self, offset: float) -> "Shifted":
        """This variable plus a constant offset."""
        return Shifted(self, offset)

    def scaled(self, factor: float) -> "Scaled":
        """This variable times a constant factor."""
        return Scaled(self, factor)


@dataclass(frozen=True)
class Constant(_Base):
    """Degenerate distribution: always ``value``.

    Scalar-constant perturbations are what Dimemas-style tools use; the
    paper's framework generalizes them, but constants remain the easiest
    way to reproduce the deterministic token-ring experiment of §6.1.
    """

    value: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.value):
            raise ValueError(f"Constant value must be finite, got {self.value!r}")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=float)

    def mean(self) -> float:
        return self.value

    def var(self) -> float:
        return 0.0


ZERO = Constant(0.0)


@dataclass(frozen=True)
class Uniform(_Base):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise ValueError("Uniform bounds must be finite")
        if self.high < self.low:
            raise ValueError(f"Uniform requires low <= high, got [{self.low}, {self.high}]")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def var(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


@dataclass(frozen=True)
class Exponential(_Base):
    """Exponential with expectation ``mean_value``.

    The paper notes queueing time is conventionally modeled as
    exponential (§5), so this is the default family for OS-noise fits.
    """

    mean_value: float

    def __post_init__(self) -> None:
        check_positive("Exponential mean", self.mean_value)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size=n)

    def mean(self) -> float:
        return self.mean_value

    def var(self) -> float:
        return self.mean_value**2


@dataclass(frozen=True)
class Normal(_Base):
    """Gaussian with mean ``mu`` and standard deviation ``sigma``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        check_nonnegative("Normal sigma", self.sigma)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return self.mu

    def var(self) -> float:
        return self.sigma**2


@dataclass(frozen=True)
class TruncatedNormal(_Base):
    """Gaussian truncated below at ``lower`` (resampled, not clipped).

    Perturbation deltas attached to edges must usually be nonnegative;
    a truncated normal keeps the bell shape without producing negative
    latencies.  Moments are computed from the standard truncated-normal
    formulas.
    """

    mu: float
    sigma: float
    lower: float = 0.0

    def __post_init__(self) -> None:
        check_positive("TruncatedNormal sigma", self.sigma)

    def _alpha(self) -> float:
        return (self.lower - self.mu) / self.sigma

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Inverse-CDF sampling restricted to the surviving tail mass.
        from scipy.stats import norm

        a = self._alpha()
        lo = norm.cdf(a)
        u = rng.uniform(lo, 1.0, size=n)
        return self.mu + self.sigma * norm.ppf(u)

    def mean(self) -> float:
        from scipy.stats import norm

        a = self._alpha()
        lam = norm.pdf(a) / max(1.0 - norm.cdf(a), 1e-300)
        return self.mu + self.sigma * lam

    def var(self) -> float:
        from scipy.stats import norm

        a = self._alpha()
        z = max(1.0 - norm.cdf(a), 1e-300)
        lam = norm.pdf(a) / z
        delta = lam * (lam - a)
        return self.sigma**2 * (1.0 - delta)


@dataclass(frozen=True)
class LogNormal(_Base):
    """Log-normal parameterized by the underlying normal's ``mu, sigma``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        check_nonnegative("LogNormal sigma", self.sigma)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def var(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)


@dataclass(frozen=True)
class Gamma(_Base):
    """Gamma with ``shape`` k and ``scale`` θ (mean kθ)."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        check_positive("Gamma shape", self.shape)
        check_positive("Gamma scale", self.scale)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    def mean(self) -> float:
        return self.shape * self.scale

    def var(self) -> float:
        return self.shape * self.scale**2


@dataclass(frozen=True)
class Weibull(_Base):
    """Weibull with ``shape`` k and ``scale`` λ.

    The classic latency-tail family: k < 1 gives heavier-than-exponential
    tails (stragglers), k > 1 lighter ones (jitter concentrating around
    the scale).
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        check_positive("Weibull shape", self.shape)
        check_positive("Weibull scale", self.scale)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def var(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)


@dataclass(frozen=True)
class Pareto(_Base):
    """Pareto (Lomax form shifted to start at ``minimum``).

    Heavy-tailed OS-noise events — periodic daemons that occasionally
    run long — are better captured by a Pareto tail than an exponential
    (cf. the FTQ analyses in Sottile & Minnich 2004).
    """

    alpha: float
    minimum: float

    def __post_init__(self) -> None:
        check_positive("Pareto alpha", self.alpha)
        check_positive("Pareto minimum", self.minimum)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.minimum * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.minimum / (self.alpha - 1.0)

    def var(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        a, m = self.alpha, self.minimum
        return m**2 * a / ((a - 1.0) ** 2 * (a - 2.0))


@dataclass(frozen=True)
class BernoulliSpike(_Base):
    """With probability ``p`` draw from ``spike``, else 0.

    Models intermittent preemption: most intervals see no noise, a few
    see a large delay (the signature shape of daemon interference).
    """

    p: float
    spike: "RandomVariable"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"BernoulliSpike p must be in [0, 1], got {self.p}")

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        hits = rng.random(n) < self.p
        out = np.zeros(n, dtype=float)
        k = int(hits.sum())
        if k:
            out[hits] = self.spike.sample_n(rng, k)
        return out

    def mean(self) -> float:
        return self.p * self.spike.mean()

    def var(self) -> float:
        m, v = self.spike.mean(), self.spike.var()
        return self.p * (v + m**2) - (self.p * m) ** 2


@dataclass(frozen=True)
class Mixture(_Base):
    """Finite mixture of component distributions with given weights."""

    components: tuple
    weights: tuple

    def __init__(self, components: Sequence[RandomVariable], weights: Sequence[float]):
        if len(components) != len(weights) or not components:
            raise ValueError("Mixture needs equal-length, non-empty components/weights")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("Mixture weights must be nonnegative and sum > 0")
        object.__setattr__(self, "components", tuple(components))
        object.__setattr__(self, "weights", tuple((w / w.sum()).tolist()))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = rng.choice(len(self.components), size=n, p=np.asarray(self.weights))
        out = np.empty(n, dtype=float)
        for i, comp in enumerate(self.components):
            mask = idx == i
            k = int(mask.sum())
            if k:
                out[mask] = comp.sample_n(rng, k)
        return out

    def mean(self) -> float:
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def var(self) -> float:
        m = self.mean()
        second = sum(w * (c.var() + c.mean() ** 2) for w, c in zip(self.weights, self.components))
        return float(second - m**2)


@dataclass(frozen=True)
class Shifted(_Base):
    """``base + offset``."""

    base: "RandomVariable"
    offset: float

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.base.sample_n(rng, n) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset

    def var(self) -> float:
        return self.base.var()


@dataclass(frozen=True)
class Scaled(_Base):
    """``factor * base``."""

    base: "RandomVariable"
    factor: float

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.base.sample_n(rng, n) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def var(self) -> float:
        return self.base.var() * self.factor**2
