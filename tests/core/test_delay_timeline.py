"""Tests for the per-rank delay timeline (§4.2 at event granularity)."""

import pytest

from repro.core import (
    PerturbationSpec,
    StreamingTraversal,
    build_graph,
    delay_timeline,
    propagate,
)
from repro.noise import Constant, MachineSignature


@pytest.fixture
def build_and_result(ring_trace):
    build = build_graph(ring_trace)
    spec = PerturbationSpec(
        MachineSignature(os_noise=Constant(100.0), latency=Constant(30.0)), seed=0
    )
    return build, propagate(build, spec)


class TestTimeline:
    def test_one_point_per_event(self, build_and_result, ring_trace):
        build, res = build_and_result
        for rank in range(ring_trace.nprocs):
            points = delay_timeline(build, res, rank)
            assert len(points) == len(build.events[rank])
            assert [p.seq for p in points] == list(range(len(points)))

    def test_monotone_nondecreasing(self, build_and_result, ring_trace):
        build, res = build_and_result
        for rank in range(ring_trace.nprocs):
            points = delay_timeline(build, res, rank)
            for a, b in zip(points, points[1:]):
                assert b.delay >= a.delay - 1e-9

    def test_increments_sum_to_final(self, build_and_result):
        build, res = build_and_result
        points = delay_timeline(build, res, 0)
        assert sum(p.increment for p in points) == pytest.approx(points[-1].delay)
        assert points[-1].delay == pytest.approx(res.final_delay[0])

    def test_first_event_init(self, build_and_result):
        build, res = build_and_result
        points = delay_timeline(build, res, 0)
        assert points[0].kind == "INIT"
        assert points[0].delay == 0.0  # INIT has no perturbed in-edges

    def test_requires_incore(self, ring_trace):
        build = build_graph(ring_trace)
        spec = PerturbationSpec(MachineSignature(os_noise=Constant(1.0)), seed=0)
        streaming = StreamingTraversal(spec).run(ring_trace)
        with pytest.raises(ValueError, match="in-core"):
            delay_timeline(build, streaming, 0)
