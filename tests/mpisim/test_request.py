"""Tests for nonblocking request handles."""

import pytest

from repro.mpisim.request import Request, Status


def make_request():
    return Request(req_id=5, rank=0, is_send=False, peer=1, tag=2, nbytes=64)


class TestLifecycle:
    def test_initially_pending(self):
        r = make_request()
        assert not r.done
        with pytest.raises(RuntimeError):
            _ = r.done_at
        with pytest.raises(RuntimeError):
            _ = r.status

    def test_complete(self):
        r = make_request()
        st = Status(source=1, tag=2, nbytes=64)
        r._complete(100.0, st)
        assert r.done
        assert r.done_at == 100.0
        assert r.status == st

    def test_double_completion_rejected(self):
        r = make_request()
        r._complete(1.0, Status(1, 2, 3))
        with pytest.raises(RuntimeError, match="twice"):
            r._complete(2.0, Status(1, 2, 3))

    def test_done_by(self):
        r = make_request()
        assert not r.done_by(1e18)
        r._complete(100.0, Status(1, 2, 3))
        assert r.done_by(100.0)
        assert r.done_by(101.0)
        assert not r.done_by(99.0)


class TestWaiters:
    def test_waiters_fire_on_completion(self):
        r = make_request()
        fired = []
        r.add_waiter(lambda when: fired.append(when))
        r.add_waiter(lambda when: fired.append(when * 2))
        assert fired == []
        r._complete(10.0, Status(1, 2, 3))
        assert fired == [10.0, 20.0]

    def test_add_waiter_after_done_rejected(self):
        r = make_request()
        r._complete(1.0, Status(1, 2, 3))
        with pytest.raises(RuntimeError, match="check done first"):
            r.add_waiter(lambda when: None)

    def test_waiters_fire_once(self):
        r = make_request()
        fired = []
        r.add_waiter(fired.append)
        r._complete(5.0, Status(1, 2, 3))
        assert fired == [5.0]
        assert r._waiters == []
