"""Microbenchmark harness: machine → signature (§5).

"Each parallel platform has a signature that is defined by the set of
metrics determined by various microbenchmarks."  The harness runs the
full suite against a simulated :class:`~repro.mpisim.runtime.Machine`
and assembles a :class:`~repro.noise.signature.MachineSignature`, using
either raw empirical distributions (method 2 of §5) or fitted
parametric families (method 1, via :mod:`repro.noise.fitting`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.microbench.bandwidth import BandwidthResult, run_bandwidth
from repro.microbench.ftq import FTQResult, run_ftq
from repro.microbench.mraz import MrazResult, run_mraz
from repro.microbench.pingpong import PingPongResult, run_pingpong
from repro.mpisim.runtime import Machine
from repro.noise.distributions import RandomVariable, ZERO
from repro.noise.empirical import Empirical
from repro.noise.fitting import fit_best
from repro.noise.models import NO_NOISE
from repro.noise.signature import MachineSignature

__all__ = ["MicrobenchReport", "measure_machine"]

_MIN_MEANINGFUL = 1e-9


@dataclass(frozen=True)
class MicrobenchReport:
    """Raw results of the full suite on one machine.

    ``ftq_by_rank`` is populated by per-rank measurement
    (``measure_machine(..., per_rank=True)``) on heterogeneous machines;
    rank 0's result doubles as the default ``ftq``.
    """

    machine_name: str
    ftq: FTQResult
    pingpong: PingPongResult
    bandwidth: BandwidthResult
    mraz: MrazResult
    ftq_by_rank: tuple = ()

    def _distribution(self, samples: np.ndarray, method: str) -> RandomVariable:
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0 or float(arr.max()) <= _MIN_MEANINGFUL:
            return ZERO
        if method == "empirical":
            return Empirical(arr)
        if method == "fit":
            return fit_best(arr).distribution
        raise ValueError(f"method must be 'empirical' or 'fit', got {method!r}")

    def to_signature(self, method: str = "empirical") -> MachineSignature:
        """Assemble the machine signature from the measured samples.

        δ_os comes from FTQ per-quantum losses, δ_λ from ping-pong
        half-RTT jitter, the per-byte rate from bandwidth-run residuals.
        ``os_quantum`` records the FTQ quantum so the analyzer can apply
        the noise distribution per quantum of observed interval rather
        than once per edge (the interval-scaled extension).
        """
        by_rank = {}
        for rank, ftq in enumerate(self.ftq_by_rank):
            by_rank[rank] = self._distribution(np.asarray(ftq.loss), method)
        return MachineSignature(
            os_noise=self._distribution(np.asarray(self.ftq.loss), method),
            latency=self._distribution(self.pingpong.jitter_samples(), method),
            per_byte=self._distribution(self.bandwidth.per_byte_samples(), method),
            os_noise_by_rank=by_rank,
            name=f"{self.machine_name} ({method})",
            os_quantum=self.ftq.quantum,
        )

    def summary(self) -> str:
        return (
            f"machine {self.machine_name}: "
            f"ftq mean loss {self.ftq.mean_loss():.1f} cy/quantum, "
            f"latency {self.pingpong.latency_estimate():.1f} cy "
            f"(jitter mean {self.pingpong.jitter_samples().mean():.1f}), "
            f"bandwidth {self.bandwidth.bandwidth_estimate():.3f} B/cy, "
            f"mraz interval var {self.mraz.variance():.1f}"
        )


def measure_machine(
    machine: Machine,
    seed: int = 0,
    ftq_quanta: int = 1024,
    ftq_quantum: float = 10_000.0,
    pingpong_iterations: int = 256,
    bandwidth_iterations: int = 64,
    bandwidth_bytes: int = 1_048_576,
    mraz_messages: int = 512,
    per_rank: bool = False,
) -> MicrobenchReport:
    """Run the full microbenchmark suite against ``machine``.

    FTQ probes rank 0's noise model directly (single-node benchmark);
    with ``per_rank=True`` it is repeated on every node so heterogeneous
    machines (e.g. unsynchronized per-rank daemons) yield per-rank
    δ_os overrides in the signature.  The messaging probes run between
    ranks 0 and 1.
    """
    noise = machine.noise
    per_node = list(noise) if isinstance(noise, tuple) else [noise] * machine.nprocs
    per_node = [n if n is not None else NO_NOISE for n in per_node]
    ftq = run_ftq(per_node[0], quanta=ftq_quanta, quantum=ftq_quantum, seed=seed)
    ftq_by_rank: tuple = ()
    if per_rank:
        ftq_by_rank = tuple(
            run_ftq(per_node[r], quanta=ftq_quanta, quantum=ftq_quantum, seed=seed + 100 + r)
            for r in range(machine.nprocs)
        )
    pp = run_pingpong(machine, iterations=pingpong_iterations, seed=seed + 1)
    bw = run_bandwidth(
        machine, iterations=bandwidth_iterations, nbytes=bandwidth_bytes, seed=seed + 2
    )
    mz = run_mraz(machine, messages=mraz_messages, seed=seed + 3)
    return MicrobenchReport(
        machine_name=machine.name,
        ftq=ftq,
        pingpong=pp,
        bandwidth=bw,
        mraz=mz,
        ftq_by_rank=ftq_by_rank,
    )
