"""Round-trip tests for distribution / noise-model serialization."""

import json

import numpy as np
import pytest

from repro.noise import distributions as d
from repro.noise import models as m
from repro.noise.empirical import Empirical
from repro.noise.serialize import from_jsonable, to_jsonable

ALL_OBJECTS = [
    d.Constant(3.5),
    d.ZERO,
    d.Uniform(1.0, 2.0),
    d.Exponential(100.0),
    d.Normal(5.0, 2.0),
    d.TruncatedNormal(1.0, 2.0, 0.5),
    d.LogNormal(2.0, 0.3),
    d.Gamma(2.0, 10.0),
    d.Pareto(2.5, 50.0),
    d.Weibull(1.3, 75.0),
    d.BernoulliSpike(0.2, d.Exponential(30.0)),
    d.Mixture([d.Constant(1.0), d.Exponential(5.0)], [0.25, 0.75]),
    d.Shifted(d.Exponential(10.0), 5.0),
    d.Scaled(d.Normal(0.0, 1.0), 2.5),
    Empirical([3.0, 1.0, 2.0]),
    Empirical([1.0, 2.0], interpolate=True),
    m.NO_NOISE,
    m.RandomPreemption(1e-4, d.Exponential(100.0)),
    m.PeriodicDaemon(1000.0, d.Constant(5.0), phase=17.0),
    m.DistributionNoise(d.Constant(0.1), per_cycle=True),
    m.CompositeNoise([m.NO_NOISE, m.RandomPreemption(1e-5, d.Constant(2.0))]),
]


@pytest.mark.parametrize("obj", ALL_OBJECTS, ids=lambda o: type(o).__name__)
def test_round_trip(obj):
    encoded = to_jsonable(obj)
    # must be genuinely JSON-able
    decoded = from_jsonable(json.loads(json.dumps(encoded)))
    assert type(decoded) is type(obj)
    assert to_jsonable(decoded) == encoded


@pytest.mark.parametrize(
    "obj",
    [o for o in ALL_OBJECTS if hasattr(o, "sample_n")],
    ids=lambda o: type(o).__name__,
)
def test_round_trip_preserves_sampling(obj):
    decoded = from_jsonable(to_jsonable(obj))
    a = obj.sample_n(np.random.default_rng(3), 16)
    b = decoded.sample_n(np.random.default_rng(3), 16)
    assert np.array_equal(a, b)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        from_jsonable({"kind": "zipf", "s": 2.0})


def test_non_dict_rejected():
    with pytest.raises(ValueError):
        from_jsonable([1, 2, 3])


def test_unserializable_type_rejected():
    with pytest.raises(TypeError):
        to_jsonable(object())
