"""Discrete-event engine executing rank programs in virtual time.

This is the "parallel machine" of our reproduction (DESIGN.md §2): rank
programs (generators yielding :mod:`repro.mpisim.api` ops) advance
through virtual cycles; point-to-point messages go through the
:class:`~repro.mpisim.matching.Matcher` with eager/rendezvous protocol
selection from the :class:`~repro.mpisim.network.NetworkModel`;
collectives are timed by :mod:`repro.mpisim.collectives`; per-rank
OS-noise models stretch every local processing segment; and a tracing
hook observes every MPI-level event with its entry/exit times — the
PMPI-wrapper role.

Timing of the point-to-point protocols (all segments get noise added):

eager (nbytes <= eager_threshold)
    ``send_end = t0 + o_s``; payload arrives at
    ``send_end + λ + nbytes/B``; ``recv_end = max(arrival, recv_ready) + o_r``.
synchronous (rendezvous)
    transfer starts at ``max(sender_ready, recv_ready)`` where
    ``sender_ready = t0 + o_s``; arrival adds ``λ + nbytes/B``;
    ``recv_end = arrival + o_r``; the sender unblocks one ack latency
    after the receiver finished: ``send_end = recv_end + λ(dst→src)``.
    This matches the three-way ``max`` structure of Eq. (1).

The engine is deterministic given its seed: the heap breaks ties with a
serial counter, and every rank owns an independent RNG stream.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro._util import as_rng, spawn_rng
from repro.mpisim import api
from repro.mpisim.collectives import collective_exits
from repro.mpisim.matching import Matcher, PostedRecv, SimMessage
from repro.mpisim.network import NetworkModel
from repro.mpisim.request import Request, Status
from repro.noise.models import NO_NOISE, NoiseModel
from repro.trace.events import EventKind

__all__ = ["Engine", "SimDeadlock", "SimError", "RankProgram"]

RankProgram = Callable[[api.RankInfo], Iterator[api.Op]]


class SimError(RuntimeError):
    """Generic simulation failure (bad op, misuse of a request, ...)."""


class SimDeadlock(SimError):
    """No runnable rank and unfinished programs remain."""


@dataclass
class _Proc:
    rank: int
    gen: Iterator
    done: bool = False
    finish_time: float = 0.0
    blocked_on: str = ""  # human-readable, for deadlock reports
    coll_count: int = 0  # per-rank collective ordinal
    event_count: int = 0


@dataclass
class _CollInstance:
    kind: EventKind
    root: int
    nbytes: int
    entries: dict = field(default_factory=dict)  # rank -> entry time


class Engine:
    """One simulation run over ``nprocs`` rank programs."""

    def __init__(
        self,
        program: RankProgram,
        nprocs: int,
        network: NetworkModel | None = None,
        noise: NoiseModel | Sequence[NoiseModel] | None = None,
        seed: int | np.random.Generator | None = 0,
        trace_hook: Callable | None = None,
        call_overhead: float = 10.0,
        max_events: int = 50_000_000,
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.network = network or NetworkModel()
        if noise is None:
            noise_models: list[NoiseModel] = [NO_NOISE] * nprocs
        elif isinstance(noise, (list, tuple)):
            if len(noise) != nprocs:
                raise ValueError(f"need {nprocs} noise models, got {len(noise)}")
            noise_models = list(noise)
        else:
            noise_models = [noise] * nprocs
        self.noise = noise_models
        root_rng = as_rng(seed)
        self.rank_rngs = spawn_rng(root_rng, nprocs)
        self.net_rng = as_rng(root_rng.integers(0, 2**63 - 1))
        self.trace_hook = trace_hook
        self.trace_patch = getattr(trace_hook, "__self__", None) and trace_hook.__self__.patch
        self.call_overhead = call_overhead
        self.max_events = max_events

        self.now = 0.0
        self._heap: list = []
        self._serial = itertools.count()
        self._procs = [
            _Proc(rank=r, gen=program(api.RankInfo(rank=r, size=nprocs))) for r in range(nprocs)
        ]
        self._matcher = Matcher(nprocs)
        self._collectives: dict[int, _CollInstance] = {}
        self._req_counters = [itertools.count() for _ in range(nprocs)]
        self._link_free: dict[tuple[int, int], float] = {}
        self._events_processed = 0

    # ------------------------------------------------------------------ plumbing
    def _at(self, when: float, fn: Callable[[], None]) -> None:
        if when < self.now - 1e-9:
            raise SimError(f"scheduling into the past: {when} < now {self.now}")
        heapq.heappush(self._heap, (when, next(self._serial), fn))

    def _noise_delay(self, rank: int, rng: np.random.Generator, t: float, duration: float) -> float:
        return self.noise[rank].delay(rng, t, duration)

    def _seg(self, rank: int, t: float, base: float) -> float:
        """A local processing segment of nominal length ``base`` plus noise."""
        return base + self._noise_delay(rank, self.rank_rngs[rank], t, base)

    def _transmit(self, src: int, dst: int, nbytes: int, ready: float) -> float:
        """Arrival time of a payload handed to the wire at ``ready``.

        With contention enabled, the directed link serializes payloads
        (bookkeeping follows engine dispatch order — an approximation for
        transfers resolved out of wire order, which is the standard
        compromise of trace-driven network models).
        """
        net = self.network
        if not net.contention:
            return ready + net.wire_time(self.net_rng, src, dst, nbytes)
        payload = net.payload_time(nbytes)
        start = max(ready, self._link_free.get((src, dst), 0.0))
        self._link_free[(src, dst)] = start + payload
        return start + payload + net.link_latency(src, dst) + net.sample_jitter(self.net_rng)

    def _emit(self, rank: int, kind: EventKind, t_start: float, t_end: float, **meta):
        self._procs[rank].event_count += 1
        if self.trace_hook is not None:
            return self.trace_hook(rank, kind, t_start, t_end, **meta)
        return None

    def _patch(self, token, *, peer: int, tag: int, nbytes: int) -> None:
        """Late-resolve a wildcard IRECV's trace record (see tracing)."""
        if token is not None and self.trace_patch is not None:
            self.trace_patch(token, peer=peer, tag=tag, nbytes=nbytes)

    def _resume(self, rank: int, value, when: float) -> None:
        """Schedule the rank's generator to take its next step at logical
        time ``when``.

        ``when`` may lie before the engine's dispatch clock: a broadcast
        leaf physically exits the collective before the last straggler
        has even entered it, but the engine can only compute the exit
        times once everyone arrived.  The step is dispatched no earlier
        than ``self.now``, while the *logical* rank time carried into
        the op handlers remains ``when`` — all timing arithmetic uses
        explicit timestamps, never the dispatch clock.
        """
        proc = self._procs[rank]
        proc.blocked_on = ""

        def step() -> None:
            try:
                op = proc.gen.send(value)
            except StopIteration:
                self._finalize(rank, when)
                return
            self._handle(rank, op, when)

        self._at(max(when, self.now), step)

    def _finalize(self, rank: int, t0: float) -> None:
        proc = self._procs[rank]
        t1 = t0 + self.call_overhead
        self._emit(rank, EventKind.FINALIZE, t0, t1)
        proc.done = True
        proc.finish_time = t1

    # ------------------------------------------------------------------ run loop
    def run(self) -> "list[float]":
        """Execute to completion; return per-rank finish times."""
        for rank in range(self.nprocs):
            t1 = self.call_overhead
            self._emit(rank, EventKind.INIT, 0.0, t1)
            self._resume(rank, None, t1)
        while self._heap:
            when, _, fn = heapq.heappop(self._heap)
            self.now = when
            fn()
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimError(f"exceeded max_events={self.max_events}; runaway program?")
        stuck = [p for p in self._procs if not p.done]
        if stuck:
            lines = [f"rank {p.rank}: blocked on {p.blocked_on or '<unknown>'}" for p in stuck]
            lines += self._matcher.describe_stuck()
            raise SimDeadlock("deadlock with unfinished ranks:\n" + "\n".join(lines))
        return [p.finish_time for p in self._procs]

    # ------------------------------------------------------------------ dispatch
    def _handle(self, rank: int, op: api.Op, t: float) -> None:
        if isinstance(op, api.Compute):
            self._resume(rank, None, t + self._seg(rank, t, op.cycles))
        elif isinstance(op, api.Send):
            self._do_send(rank, op, t)
        elif isinstance(op, api.Recv):
            self._do_recv(rank, op, t)
        elif isinstance(op, api.Isend):
            self._do_isend(rank, op, t)
        elif isinstance(op, api.Irecv):
            self._do_irecv(rank, op, t)
        elif isinstance(op, api.Wait):
            self._do_wait(rank, op, t)
        elif isinstance(op, api.Waitall):
            self._do_waitall(rank, op, t)
        elif isinstance(op, api.Waitsome):
            self._do_waitsome(rank, op, t)
        elif isinstance(op, api.Test):
            self._do_test(rank, op, t)
        elif isinstance(op, api.Sendrecv):
            self._do_sendrecv(rank, op, t)
        elif isinstance(op, api.COLLECTIVE_OPS):
            self._do_collective(rank, op, t)
        else:
            raise SimError(f"rank {rank} yielded a non-op: {op!r}")

    # ------------------------------------------------------------------ p2p sends
    def _check_peer(self, rank: int, peer: int, what: str) -> None:
        if not 0 <= peer < self.nprocs:
            raise SimError(f"rank {rank}: {what} peer {peer} out of range")
        if peer == rank:
            raise SimError(f"rank {rank}: self-{what} is not supported")

    def _do_send(self, rank: int, op: api.Send, t: float) -> None:
        self._check_peer(rank, op.dest, "send")
        ready = t + self._seg(rank, t, self.network.send_overhead)
        mode = getattr(op, "mode", "standard")
        if mode == "ready":
            # MPI_Rsend: erroneous unless the matching receive is posted.
            if not self._matcher.has_posted_recv(rank, op.dest, op.tag):
                raise SimError(
                    f"rank {rank}: ready-mode send to {op.dest} (tag {op.tag}) "
                    f"with no matching receive posted (erroneous MPI program)"
                )
            eager = True
        elif mode == "buffered":
            eager = True
        elif mode == "synchronous":
            eager = False
        else:
            eager = self.network.is_eager(op.nbytes)
        if eager:
            arrival = ready + self.network.wire_time(self.net_rng, rank, op.dest, op.nbytes)
            pair = self._matcher.add_message(
                SimMessage(rank, op.dest, op.tag, op.nbytes, sync=False, ready=arrival)
            )
            self._emit(
                rank, EventKind.SEND, t, ready, peer=op.dest, tag=op.tag, nbytes=op.nbytes
            )
            self._resume(rank, None, ready)
            if pair:
                self._resolve(*pair)
        else:
            proc = self._procs[rank]
            proc.blocked_on = f"Send(dest={op.dest}, tag={op.tag}, {op.nbytes}B, sync)"

            def on_send_end(send_end: float) -> None:
                self._emit(
                    rank, EventKind.SEND, t, send_end, peer=op.dest, tag=op.tag, nbytes=op.nbytes
                )
                self._resume(rank, None, send_end)

            pair = self._matcher.add_message(
                SimMessage(
                    rank,
                    op.dest,
                    op.tag,
                    op.nbytes,
                    sync=True,
                    ready=ready,
                    on_send_end=on_send_end,
                )
            )
            if pair:
                self._resolve(*pair)

    def _do_recv(self, rank: int, op: api.Recv, t: float) -> None:
        if op.source != api.ANY_SOURCE:
            self._check_peer(rank, op.source, "recv")
        proc = self._procs[rank]
        proc.blocked_on = f"Recv(source={op.source}, tag={op.tag})"

        def on_complete(recv_end: float, msg: SimMessage) -> None:
            status = Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
            self._emit(
                rank,
                EventKind.RECV,
                t,
                recv_end,
                peer=msg.src,
                tag=msg.tag,
                nbytes=msg.nbytes,
                src_any=op.source == api.ANY_SOURCE,
                tag_any=op.tag == api.ANY_TAG,
            )
            self._resume(rank, status, recv_end)

        pair = self._matcher.add_recv(
            PostedRecv(dst=rank, source=op.source, tag=op.tag, ready=t, on_complete=on_complete)
        )
        if pair:
            self._resolve(*pair)

    def _resolve(self, msg: SimMessage, recv: PostedRecv) -> None:
        """Compute completion times for a matched (message, receive) pair."""
        dst = recv.dst
        if msg.sync:
            start = max(msg.ready, recv.ready)
            arrival = self._transmit(msg.src, dst, msg.nbytes, start)
            recv_end = arrival + self._seg(dst, arrival, self.network.recv_overhead)
            send_end = recv_end + self.network.link_latency(dst, msg.src)
            if msg.on_send_end is not None:
                msg.on_send_end(send_end)
        else:
            t_in = max(msg.ready, recv.ready)
            recv_end = t_in + self._seg(dst, t_in, self.network.recv_overhead)
        recv.on_complete(recv_end, msg)

    # ------------------------------------------------------------------ nonblocking
    def _new_request(self, rank: int, is_send: bool, peer: int, tag: int, nbytes: int) -> Request:
        rid = next(self._req_counters[rank])
        return Request(rid, rank, is_send, peer, tag, nbytes)

    def _do_isend(self, rank: int, op: api.Isend, t: float) -> None:
        self._check_peer(rank, op.dest, "isend")
        req = self._new_request(rank, True, op.dest, op.tag, op.nbytes)
        call_end = t + self._seg(rank, t, self.network.send_overhead)
        status = Status(source=rank, tag=op.tag, nbytes=op.nbytes)
        if self.network.is_eager(op.nbytes):
            arrival = self._transmit(rank, op.dest, op.nbytes, call_end)
            req._complete(call_end, status)
            pair = self._matcher.add_message(
                SimMessage(rank, op.dest, op.tag, op.nbytes, sync=False, ready=arrival)
            )
        else:

            def on_send_end(send_end: float) -> None:
                req._complete(send_end, status)

            pair = self._matcher.add_message(
                SimMessage(
                    rank,
                    op.dest,
                    op.tag,
                    op.nbytes,
                    sync=True,
                    ready=call_end,
                    on_send_end=on_send_end,
                )
            )
        self._emit(
            rank,
            EventKind.ISEND,
            t,
            call_end,
            peer=op.dest,
            tag=op.tag,
            nbytes=op.nbytes,
            req=req.req_id,
        )
        self._resume(rank, req, call_end)
        if pair:
            self._resolve(*pair)

    def _do_irecv(self, rank: int, op: api.Irecv, t: float) -> None:
        if op.source != api.ANY_SOURCE:
            self._check_peer(rank, op.source, "irecv")
        req = self._new_request(rank, False, op.source, op.tag, 0)
        call_end = t + self._seg(rank, t, self.call_overhead)
        # Every IRECV record is patched at match time so the trace carries
        # the resolved source/tag/size (what a real PMPI tracer reads from
        # the eventual MPI_Status) — essential for wildcards, and it gives
        # non-wildcard receives their actual payload size too.
        token = self._emit(
            rank,
            EventKind.IRECV,
            t,
            call_end,
            peer=op.source,
            tag=op.tag,
            req=req.req_id,
            src_any=op.source == api.ANY_SOURCE,
            tag_any=op.tag == api.ANY_TAG,
            patchable=True,
        )

        def on_complete(recv_end: float, msg: SimMessage) -> None:
            req._complete(recv_end, Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes))
            self._patch(token, peer=msg.src, tag=msg.tag, nbytes=msg.nbytes)

        pair = self._matcher.add_recv(
            PostedRecv(
                dst=rank, source=op.source, tag=op.tag, ready=call_end, on_complete=on_complete
            )
        )
        self._resume(rank, req, call_end)
        if pair:
            self._resolve(*pair)

    # A request may have a completion *time* assigned before that virtual time
    # arrives (resolution happens when both endpoints are known).  Waiters must
    # not observe a completion before its time, so observation goes through a
    # scheduled callback at done_at.
    def _when_observable(self, req: Request, cb: Callable[[float], None]) -> None:
        if not isinstance(req, Request):
            raise SimError(f"waited on non-request {req!r}")
        if req.done:
            cb(req.done_at)
        else:
            # Completion may be *assigned* (during match resolution) with a
            # done_at in the virtual future; observation is deferred to that
            # time via a scheduled callback.
            req.add_waiter(lambda when: self._at(max(when, self.now), lambda: cb(when)))

    def _do_wait(self, rank: int, op: api.Wait, t: float) -> None:
        req: Request = op.request  # type: ignore[assignment]
        if not isinstance(req, Request):
            raise SimError(f"rank {rank}: Wait on non-request {req!r}")
        if req.rank != rank:
            raise SimError(f"rank {rank}: Wait on rank {req.rank}'s request")
        proc = self._procs[rank]
        proc.blocked_on = f"Wait(req={req.req_id})"

        def finish(done_at: float) -> None:
            end = max(done_at, t) + self.call_overhead
            self._emit(
                rank,
                EventKind.WAIT,
                t,
                end,
                peer=req.status.source if not req.is_send else req.peer,
                tag=req.status.tag,
                nbytes=req.status.nbytes,
                reqs=(req.req_id,),
                completed=(req.req_id,),
            )
            self._resume(rank, req.status, end)

        self._when_observable(req, finish)

    def _do_waitall(self, rank: int, op: api.Waitall, t: float) -> None:
        reqs = list(op.requests)
        for r in reqs:
            if not isinstance(r, Request) or r.rank != rank:
                raise SimError(f"rank {rank}: Waitall on invalid request {r!r}")
        proc = self._procs[rank]
        proc.blocked_on = f"Waitall({[r.req_id for r in reqs]})"
        if not reqs:
            end = t + self.call_overhead
            self._emit(rank, EventKind.WAITALL, t, end, reqs=(), completed=())
            self._resume(rank, [], end)
            return
        remaining = {id(r) for r in reqs if not r.done}
        latest = max((r.done_at for r in reqs if r.done), default=t)

        def finish() -> None:
            end = max(latest, t) + self.call_overhead
            ids = tuple(r.req_id for r in reqs)
            self._emit(rank, EventKind.WAITALL, t, end, reqs=ids, completed=ids)
            self._resume(rank, [r.status for r in reqs], end)

        if not remaining:
            finish()
            return

        def one_done(req: Request, when: float) -> None:
            nonlocal latest
            latest = max(latest, when)
            remaining.discard(id(req))
            if not remaining:
                finish()

        for r in reqs:
            if not r.done:
                self._when_observable(r, lambda when, _r=r: one_done(_r, when))

    def _do_waitsome(self, rank: int, op: api.Waitsome, t: float) -> None:
        reqs = list(op.requests)
        for r in reqs:
            if not isinstance(r, Request) or r.rank != rank:
                raise SimError(f"rank {rank}: Waitsome on invalid request {r!r}")
        proc = self._procs[rank]
        proc.blocked_on = f"Waitsome({[r.req_id for r in reqs]})"
        already = [r for r in reqs if r.done_by(t)]

        def finish(done_at: float) -> None:
            end = max(done_at, t) + self.call_overhead
            done_now = [r for r in reqs if r.done_by(end)]
            ids = tuple(r.req_id for r in reqs)
            self._emit(
                rank,
                EventKind.WAITSOME,
                t,
                end,
                reqs=ids,
                completed=tuple(r.req_id for r in done_now),
            )
            self._resume(rank, done_now, end)

        if already:
            finish(t)
            return
        fired = False

        def first_done(when: float) -> None:
            nonlocal fired
            if fired:
                return
            fired = True
            finish(when)

        for r in reqs:
            self._when_observable(r, first_done)

    def _do_test(self, rank: int, op: api.Test, t: float) -> None:
        req: Request = op.request  # type: ignore[assignment]
        if not isinstance(req, Request) or req.rank != rank:
            raise SimError(f"rank {rank}: Test on invalid request {op.request!r}")
        end = t + self.call_overhead
        done = req.done_by(end)
        self._emit(
            rank,
            EventKind.TEST,
            t,
            end,
            reqs=(req.req_id,),
            completed=(req.req_id,) if done else (),
        )
        self._resume(rank, (done, req.status if done else None), end)

    # ------------------------------------------------------------------ sendrecv
    def _do_sendrecv(self, rank: int, op: api.Sendrecv, t: float) -> None:
        self._check_peer(rank, op.dest, "sendrecv-send")
        if op.source != api.ANY_SOURCE:
            self._check_peer(rank, op.source, "sendrecv-recv")
        proc = self._procs[rank]
        proc.blocked_on = f"Sendrecv(dest={op.dest}, source={op.source})"
        state = {"send_end": None, "recv_end": None, "msg": None, "finished": False}

        def maybe_finish() -> None:
            if state["send_end"] is None or state["recv_end"] is None or state["finished"]:
                return
            state["finished"] = True
            end = max(state["send_end"], state["recv_end"])
            msg: SimMessage = state["msg"]
            self._emit(
                rank,
                EventKind.SENDRECV,
                t,
                end,
                peer=op.dest,
                tag=op.send_tag,
                nbytes=op.send_nbytes,
                recv_peer=msg.src,
                recv_tag=msg.tag,
                recv_nbytes=msg.nbytes,
                src_any=op.source == api.ANY_SOURCE,
                tag_any=op.recv_tag == api.ANY_TAG,
            )
            self._resume(rank, Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes), end)

        # Receive half first (posted-before-send avoids artificial rendezvous
        # deadlock when two ranks sendrecv each other).
        def on_recv(recv_end: float, msg: SimMessage) -> None:
            state["recv_end"] = recv_end
            state["msg"] = msg
            maybe_finish()

        pair_r = self._matcher.add_recv(
            PostedRecv(dst=rank, source=op.source, tag=op.recv_tag, ready=t, on_complete=on_recv)
        )

        ready = t + self._seg(rank, t, self.network.send_overhead)
        if self.network.is_eager(op.send_nbytes):
            arrival = self._transmit(rank, op.dest, op.send_nbytes, ready)
            state["send_end"] = ready
            pair_s = self._matcher.add_message(
                SimMessage(rank, op.dest, op.send_tag, op.send_nbytes, sync=False, ready=arrival)
            )
        else:

            def on_send_end(send_end: float) -> None:
                state["send_end"] = send_end
                maybe_finish()

            pair_s = self._matcher.add_message(
                SimMessage(
                    rank,
                    op.dest,
                    op.send_tag,
                    op.send_nbytes,
                    sync=True,
                    ready=ready,
                    on_send_end=on_send_end,
                )
            )
        if pair_r:
            self._resolve(*pair_r)
        if pair_s:
            self._resolve(*pair_s)
        maybe_finish()

    # ------------------------------------------------------------------ collectives
    _COLL_KIND = {
        api.Barrier: EventKind.BARRIER,
        api.Bcast: EventKind.BCAST,
        api.Reduce: EventKind.REDUCE,
        api.Allreduce: EventKind.ALLREDUCE,
        api.Gather: EventKind.GATHER,
        api.Scatter: EventKind.SCATTER,
        api.Allgather: EventKind.ALLGATHER,
        api.Alltoall: EventKind.ALLTOALL,
        api.Scan: EventKind.SCAN,
        api.ReduceScatter: EventKind.REDUCE_SCATTER,
    }

    def _do_collective(self, rank: int, op: api.Op, t: float) -> None:
        kind = self._COLL_KIND[type(op)]
        root = getattr(op, "root", -1)
        nbytes = getattr(op, "nbytes", 0)
        if root >= self.nprocs:
            raise SimError(f"rank {rank}: collective root {root} out of range")
        proc = self._procs[rank]
        ordinal = proc.coll_count
        proc.coll_count += 1
        proc.blocked_on = f"{kind.name}(coll#{ordinal})"

        inst = self._collectives.get(ordinal)
        if inst is None:
            inst = _CollInstance(kind=kind, root=root, nbytes=nbytes)
            self._collectives[ordinal] = inst
        else:
            if inst.kind != kind:
                raise SimError(
                    f"collective #{ordinal}: rank {rank} called {kind.name} but others "
                    f"called {inst.kind.name}"
                )
            if inst.root != root:
                raise SimError(
                    f"collective #{ordinal} ({kind.name}): root mismatch "
                    f"({root} vs {inst.root})"
                )
        if rank in inst.entries:
            raise SimError(f"rank {rank} entered collective #{ordinal} twice")
        inst.entries[rank] = t
        if len(inst.entries) < self.nprocs:
            return
        del self._collectives[ordinal]
        entries = [inst.entries[r] for r in range(self.nprocs)]
        exits = collective_exits(
            kind,
            entries,
            root if root >= 0 else 0,
            nbytes,
            self.network,
            self._noise_delay,
            self.rank_rngs,
            self.net_rng,
        )
        for r in range(self.nprocs):
            end = max(exits[r], entries[r] + self.call_overhead)
            self._emit(
                r,
                kind,
                entries[r],
                end,
                nbytes=nbytes,
                root=root,
                coll_seq=ordinal,
            )
            self._resume(r, None, end)
