"""Tests for event-window extraction."""

import pytest

from repro.core import (
    PerturbationSpec,
    build_graph,
    extract_window,
    propagate,
    to_dot,
)
from repro.core.graph import EdgeKind
from repro.noise import Constant, MachineSignature


@pytest.fixture
def build(ring_trace):
    return build_graph(ring_trace)


class TestExtraction:
    def test_window_selects_seq_range(self, build):
        w = extract_window(build, 1, 4)
        for n in w.graph.nodes:
            if not n.is_virtual:
                assert 1 <= n.seq < 4

    def test_full_window_is_whole_graph(self, build):
        total_seqs = max(len(evs) for evs in build.events)
        w = extract_window(build, 0, total_seqs)
        assert len(w.graph.nodes) == len(build.graph.nodes)
        assert len(w.graph.edges) == len(build.graph.edges)

    def test_edges_only_within_window(self, build):
        w = extract_window(build, 1, 3)
        assert len(w.graph.edges) < len(build.graph.edges)
        # every kept edge references window nodes only (by construction of ids)
        for e in w.graph.edges:
            assert 0 <= e.src < len(w.graph.nodes)
            assert 0 <= e.dst < len(w.graph.nodes)

    def test_rank_restriction(self, build):
        w = extract_window(build, 0, 100, ranks=[0, 1])
        real_ranks = {n.rank for n in w.graph.nodes if not n.is_virtual}
        assert real_ranks == {0, 1}

    def test_hub_included_when_touching_window(self, build, ring_trace):
        # The allreduce is the penultimate event; windows covering it keep
        # the hub, earlier windows do not.
        n_events = len(build.events[0])
        with_coll = extract_window(build, n_events - 2, n_events)
        without = extract_window(build, 0, 2)
        assert any(n.is_virtual for n in with_coll.graph.nodes)
        assert not any(n.is_virtual for n in without.graph.nodes)

    def test_empty_window_rejected(self, build):
        with pytest.raises(ValueError):
            extract_window(build, 3, 3)
        with pytest.raises(ValueError):
            extract_window(build, 10_000, 10_001)

    def test_message_edges_survive_when_both_ends_in(self, build):
        total = max(len(evs) for evs in build.events)
        w = extract_window(build, 0, total)
        n_msg = sum(1 for e in w.graph.edges if e.kind == EdgeKind.MESSAGE)
        assert n_msg == sum(1 for _ in build.graph.message_edges())


class TestDelayMapping:
    def test_map_delays_aligns(self, build):
        spec = PerturbationSpec(MachineSignature(os_noise=Constant(50.0)), seed=0)
        res = propagate(build, spec)
        w = extract_window(build, 0, 3)
        delays = w.map_delays(res.node_delay)
        assert len(delays) == len(w.graph.nodes)
        # spot check: node delays match the original graph's values
        for wid, orig in enumerate(w.original_ids):
            assert delays[wid] == res.node_delay[orig]

    def test_windowed_dot_export(self, build):
        w = extract_window(build, 0, 4)
        dot = to_dot(w.graph, name="window")
        assert dot.startswith('digraph "window"')
