"""Tests for Monte-Carlo perturbation analysis."""

import numpy as np
import pytest

from repro.core import PerturbationSpec, build_graph, monte_carlo, propagate
from repro.noise import Constant, Exponential, MachineSignature


@pytest.fixture(scope="module")
def ring_build(ring_trace):
    return build_graph(ring_trace)


def spec(seed=0, scale=1.0, mean=100.0):
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(mean), latency=Exponential(40.0)),
        seed=seed,
        scale=scale,
    )


class TestDistribution:
    def test_shapes(self, ring_build):
        dist = monte_carlo(ring_build, spec(), replicates=20)
        assert dist.replicates == 20
        assert dist.nprocs == ring_build.graph.nprocs
        assert dist.makespan_samples.shape == (20,)
        assert dist.rank_mean().shape == (ring_build.graph.nprocs,)

    def test_replicates_vary(self, ring_build):
        dist = monte_carlo(ring_build, spec(), replicates=10)
        assert len(np.unique(dist.makespan_samples)) > 1

    def test_first_replicate_matches_single_propagation(self, ring_build):
        s = spec(seed=42)
        dist = monte_carlo(ring_build, s, replicates=3)
        single = propagate(ring_build, s)
        assert dist.samples[0].tolist() == pytest.approx(single.final_delay)

    def test_deterministic(self, ring_build):
        a = monte_carlo(ring_build, spec(seed=5), replicates=8)
        b = monte_carlo(ring_build, spec(seed=5), replicates=8)
        assert np.array_equal(a.samples, b.samples)
        assert a.seeds == b.seeds

    def test_constant_noise_degenerate(self, ring_build):
        const = PerturbationSpec(MachineSignature(os_noise=Constant(100.0)), seed=0)
        dist = monte_carlo(ring_build, const, replicates=5)
        assert dist.std() == pytest.approx(0.0)
        assert dist.quantile(0.05) == dist.quantile(0.95)

    def test_quantiles_ordered(self, ring_build):
        dist = monte_carlo(ring_build, spec(), replicates=40)
        q = dist.quantile([0.05, 0.5, 0.95])
        assert q[0] <= q[1] <= q[2]
        assert dist.mean() > 0

    def test_exceedance(self, ring_build):
        dist = monte_carlo(ring_build, spec(), replicates=40)
        assert dist.exceedance_probability(0.0) == 1.0
        assert dist.exceedance_probability(float("inf")) == 0.0
        mid = float(dist.quantile(0.5))
        assert 0.2 <= dist.exceedance_probability(mid) <= 0.8

    def test_mean_converges_to_expected_scale(self, ring_build):
        """MC mean tracks the per-seed variation around the same model."""
        small = monte_carlo(ring_build, spec(mean=50.0), replicates=30)
        large = monte_carlo(ring_build, spec(mean=200.0), replicates=30)
        assert large.mean() > 2 * small.mean()

    def test_summary_renders(self, ring_build):
        text = monte_carlo(ring_build, spec(), replicates=5).summary()
        assert "p5/p50/p95" in text

    def test_validation(self, ring_build):
        with pytest.raises(ValueError):
            monte_carlo(ring_build, spec(), replicates=0)
