"""Rule registry.

Rules self-register at import time through the :func:`rule` decorator;
:func:`all_rules` returns the catalog in id order.  Importing the rule
packs here keeps registration a package-level invariant — any consumer
that can see the registry sees the full rule set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.core.diagnostics import CODES
from repro.lint.model import Finding, LintConfig, Rule, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext

__all__ = ["rule", "all_rules", "get_rule", "rule_for_code"]

_REGISTRY: dict[str, Rule] = {}


def rule(
    id: str,
    code: str,
    severity: Severity,
    category: str,
    summary: str,
    rationale: str,
) -> Callable:
    """Register the decorated generator function as a lint rule."""
    if id in _REGISTRY:
        raise ValueError(f"duplicate rule id {id!r}")
    if code not in CODES:
        raise ValueError(f"rule {id}: code {code!r} not in repro.core.diagnostics.CODES")
    if category not in ("trace", "graph", "diagnosis", "verify"):
        raise ValueError(
            f"rule {id}: category must be 'trace', 'graph', 'diagnosis' or 'verify', "
            f"got {category!r}"
        )

    def register(fn: Callable) -> Rule:
        r = Rule(
            id=id,
            code=code,
            severity=severity,
            category=category,
            summary=summary,
            rationale=rationale,
            check=fn,
        )
        _REGISTRY[id] = r
        return r

    return register


def all_rules(category: str | None = None) -> list[Rule]:
    """The full rule catalog (optionally one category), in id order."""
    _ensure_loaded()
    rules = sorted(_REGISTRY.values(), key=lambda r: r.id)
    if category is not None:
        rules = [r for r in rules if r.category == category]
    return rules


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule_id!r}; known: {sorted(_REGISTRY)}") from None


def rule_for_code(code: str) -> Rule | None:
    """The rule owning a diagnostics code (None if no rule covers it)."""
    _ensure_loaded()
    for r in sorted(_REGISTRY.values(), key=lambda r: r.id):
        if r.code == code:
            return r
    return None


def _ensure_loaded() -> None:
    """Import the rule packs (idempotent; resolves circular imports)."""
    from repro.diagnose import rules as diagnose_rules  # noqa: F401
    from repro.lint import graph_rules, trace_rules  # noqa: F401
    from repro.verify import rules as verify_rules  # noqa: F401


def run_rule(r: Rule, ctx: object, config: LintConfig) -> Iterator[Finding]:
    """Run one rule, applying severity overrides and the emission cap.

    ``ctx`` is a :class:`~repro.lint.engine.LintContext` for trace/graph
    rules or a :class:`~repro.diagnose.engine.DiagnoseContext` for
    diagnosis rules; the cap and override mechanics are identical.
    """
    severity = config.severity_for(r.id, r.severity)
    emitted = 0
    for f in r.check(ctx, config):
        if emitted >= config.max_findings_per_rule:
            yield Finding(
                rule_id=r.id,
                code=r.code,
                severity=severity,
                message=(
                    f"further {r.id} findings suppressed after "
                    f"{config.max_findings_per_rule} (raise max_findings_per_rule to see all)"
                ),
            )
            return
        emitted += 1
        yield f.with_severity(severity)
