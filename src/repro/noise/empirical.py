"""Empirical distributions built from microbenchmark samples.

The second parameterization method of §5: instead of fitting an assumed
family, keep the measured samples and draw from the empirical
distribution.  By the law of large numbers the empirical distribution
converges to the true one as the sample count grows, which is exactly
the property the property-based tests verify.

Sampling is implemented two ways:

* :class:`Empirical` — classical bootstrap resampling (draw measured
  values with replacement).  Exact match to the sample's ECDF.
* :class:`Empirical` with ``interpolate=True`` — inverse-CDF sampling
  with linear interpolation between order statistics, which smooths the
  staircase and can produce values between observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Empirical", "ecdf"]


def ecdf(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, F(xs))`` — the empirical CDF evaluated at the sorted
    unique sample points.

    ``F(x)`` is the right-continuous step function
    ``#(samples <= x) / n``.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("ecdf requires at least one sample")
    xs, counts = np.unique(arr, return_counts=True)
    return xs, np.cumsum(counts) / arr.size


@dataclass(frozen=True)
class Empirical:
    """Empirical distribution over a fixed set of measured samples.

    Implements the :class:`repro.noise.distributions.RandomVariable`
    protocol so an empirical distribution can be attached anywhere a
    parametric one can (the whole point of §5's second method).
    """

    samples: tuple
    interpolate: bool = False

    def __init__(self, samples: Sequence[float], interpolate: bool = False):
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("Empirical requires a non-empty 1-D sample array")
        if not np.all(np.isfinite(arr)):
            raise ValueError("Empirical samples must be finite")
        object.__setattr__(self, "samples", tuple(np.sort(arr).tolist()))
        object.__setattr__(self, "interpolate", bool(interpolate))

    # -- RandomVariable protocol ------------------------------------------------
    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_n(rng, 1)[0])

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        arr = np.asarray(self.samples)
        if not self.interpolate or arr.size == 1:
            idx = rng.integers(0, arr.size, size=n)
            return arr[idx]
        u = rng.uniform(0.0, 1.0, size=n)
        return self.quantile(u)

    def mean(self) -> float:
        return float(np.mean(self.samples))

    def var(self) -> float:
        return float(np.var(self.samples))

    # -- Descriptive statistics ---------------------------------------------------
    def quantile(self, q) -> np.ndarray:
        """Linear-interpolated quantile(s) of the sample."""
        return np.quantile(np.asarray(self.samples), q)

    def cdf(self, x) -> np.ndarray:
        """Right-continuous ECDF evaluated at ``x`` (scalar or array)."""
        arr = np.asarray(self.samples)
        return np.searchsorted(arr, np.asarray(x, dtype=float), side="right") / arr.size

    def min(self) -> float:
        return self.samples[0]

    def max(self) -> float:
        return self.samples[-1]

    def size(self) -> int:
        return len(self.samples)

    def ks_distance(self, other: "Empirical") -> float:
        """Two-sample Kolmogorov–Smirnov statistic against ``other``.

        Used by the fitting tests to check that sampling from an
        empirical distribution converges back to its source.
        """
        grid = np.union1d(np.asarray(self.samples), np.asarray(other.samples))
        return float(np.max(np.abs(self.cdf(grid) - other.cdf(grid))))

    def truncated(self, lower: float | None = None, upper: float | None = None) -> "Empirical":
        """New empirical distribution keeping samples in ``[lower, upper]``."""
        arr = np.asarray(self.samples)
        mask = np.ones(arr.size, dtype=bool)
        if lower is not None:
            mask &= arr >= lower
        if upper is not None:
            mask &= arr <= upper
        kept = arr[mask]
        if kept.size == 0:
            raise ValueError("truncation removed every sample")
        return Empirical(kept, interpolate=self.interpolate)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.samples)
