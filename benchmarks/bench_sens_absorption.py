"""SENS — absorption map: tolerant vs sensitive code regions (§4.2).

"We also can explore how varying parameters affects not only overall
runtime, but regions within the graph where perturbations are absorbed
or fully propagated, corresponding to tolerant or highly sensitive
code."  This experiment perturbs a single rank and classifies every
message-receiving subevent across four messaging patterns; the expected
shape is a tolerance ladder: lockstep ring most sensitive, task farm
most tolerant.
"""

import time

from benchmarks._common import emit, table
from repro.apps import (
    FFTTransposeParams,
    MasterWorkerParams,
    PipelineParams,
    StencilParams,
    TokenRingParams,
    fft_transpose,
    master_worker,
    pipeline,
    stencil1d,
    token_ring,
)
from repro.core import PerturbationSpec, absorption_map, build_graph, propagate
from repro.mpisim import run
from repro.noise import Constant, MachineSignature

P = 6
NOISY_RANK = 2

APPS = [
    ("token_ring", token_ring(TokenRingParams(traversals=4, compute_cycles=20_000.0))),
    ("pipeline", pipeline(PipelineParams(items=12, stage_cycles=20_000.0))),
    ("stencil1d", stencil1d(StencilParams(iterations=6, interior_cycles=20_000.0))),
    ("master_worker", master_worker(MasterWorkerParams(tasks=30, base_cycles=20_000.0))),
    ("fft_transpose", fft_transpose(FFTTransposeParams(stages=6, transform_cycles=20_000.0))),
]


def test_sens_absorption_ladder(benchmark):
    sig = MachineSignature(os_noise_by_rank={NOISY_RANK: Constant(15_000.0)})
    spec = PerturbationSpec(sig, seed=0)

    rows = []
    ratios = {}
    last = None
    t0 = time.perf_counter()
    for name, prog in APPS:
        trace = run(prog, nprocs=P, seed=0).trace
        build = build_graph(trace)
        res = propagate(build, spec)
        am = absorption_map(build, res)
        ratios[name] = am.overall_ratio()
        rows.append(
            [
                name,
                f"{am.overall_ratio():.2%}",
                sum(am.propagated_counts.values()),
                sum(am.absorbed_counts.values()),
                f"{res.max_delay:,.0f}",
            ]
        )
        last = (build, spec)

    emit(
        "sens_absorption",
        f"single noisy rank ({NOISY_RANK}), constant 15k cy per local edge\n\n"
        + table(
            ["app", "absorbed ratio", "propagated", "absorbed", "max delay"],
            rows,
            widths=[14, 14, 12, 10, 12],
        ),
        params={"nprocs": P, "noisy_rank": NOISY_RANK, "noise_cycles": 15_000.0},
        timings={"ladder_s": time.perf_counter() - t0},
        metrics={"absorbed_ratio": ratios},
    )

    # The §4.2 shape: the lockstep ring tolerates less than the task farm.
    assert ratios["token_ring"] < ratios["master_worker"]

    build, spec = last
    benchmark(lambda: absorption_map(build, propagate(build, spec)))
