"""Irregular sparse neighbor exchange.

Models unstructured-mesh communication: each rank has a deterministic
pseudo-random neighbor set (seeded, so every rank derives the same
global topology independently — the usual SPMD trick) and per-step
exchanges with all neighbors via nonblocking operations.  Stresses the
matcher with asymmetric channels, many tags, and variable payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.mpisim.api import Compute, Irecv, Isend, Op, RankInfo, Waitall

__all__ = ["RandomSparseParams", "random_sparse", "neighbor_sets"]


@dataclass(frozen=True)
class RandomSparseParams:
    """Configuration of the sparse exchange.

    iterations:
        Exchange rounds.
    degree:
        Outgoing neighbors per rank (directed; in-degree varies).
    min_bytes / max_bytes:
        Payload range (deterministic per edge from the topology seed).
    compute_cycles:
        Per-round local work.
    topology_seed:
        Seed shared by all ranks to derive the same topology.
    """

    iterations: int = 5
    degree: int = 3
    min_bytes: int = 64
    max_bytes: int = 4096
    compute_cycles: float = 25_000.0
    topology_seed: int = 12345

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.degree < 1:
            raise ValueError("iterations and degree must be >= 1")
        if not 0 <= self.min_bytes <= self.max_bytes:
            raise ValueError("need 0 <= min_bytes <= max_bytes")


def neighbor_sets(p: int, params: RandomSparseParams) -> list[list[tuple[int, int]]]:
    """Directed neighbor lists: ``out[r]`` is ``[(dst, nbytes), ...]``.

    Deterministic in (p, params): every rank computes the same topology.
    """
    rng = np.random.default_rng(params.topology_seed)
    out: list[list[tuple[int, int]]] = []
    for r in range(p):
        others = [d for d in range(p) if d != r]
        deg = min(params.degree, len(others))
        dests = rng.choice(others, size=deg, replace=False) if others else []
        row = []
        for d in sorted(int(x) for x in dests):
            nbytes = int(rng.integers(params.min_bytes, params.max_bytes + 1))
            row.append((d, nbytes))
        out.append(row)
    return out


def random_sparse(params: RandomSparseParams = RandomSparseParams()):
    """Rank program factory for the irregular exchange."""

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        topo = neighbor_sets(p, params)
        my_out = topo[me.rank]
        # Incoming edges: every (src -> me); tag = src so channels stay
        # distinct even with multiple rounds in flight.
        my_in = [src for src in range(p) for (dst, _) in topo[src] if dst == me.rank]
        for _ in range(params.iterations):
            requests = []
            for src in my_in:
                requests.append((yield Irecv(source=src, tag=src)))
            for dst, nbytes in my_out:
                requests.append((yield Isend(dest=dst, nbytes=nbytes, tag=me.rank)))
            yield Compute(params.compute_cycles)
            if requests:
                yield Waitall(requests)

    return program
