"""The module-level helpers: disabled-path no-ops and session lifecycle."""

from repro import obs


def test_disabled_path_is_noop():
    assert not obs.enabled()
    assert obs.active() is None
    # All helpers must be safe (and do nothing) without a session.
    s1 = obs.span("anything", key="value")
    s2 = obs.span("other")
    assert s1 is s2  # the shared null span — no allocation per call
    with s1 as handle:
        handle.add("ignored", 5)
    obs.add("counter")
    obs.span_add("counter", 2)
    obs.gauge("g", 1.0)
    obs.gauge_max("g", 2.0)
    with obs.time_phase("phase"):
        pass
    assert obs.stop() is None


def test_start_stop_lifecycle():
    session = obs.start("test-run")
    assert obs.enabled()
    assert obs.active() is session
    # Re-entrant start returns the same session.
    assert obs.start("other-label") is session
    assert session.label == "test-run"

    with obs.span("phase"):
        obs.span_add("items", 3)
    obs.add("items", 2)
    obs.gauge_max("hwm", 7.0)

    stopped = obs.stop()
    assert stopped is session
    assert not obs.enabled()
    assert session.metrics.counter("items").value == 5
    assert session.metrics.gauge("hwm", "max").value == 7.0
    assert session.spans[0].counters == {"items": 3}


def test_stop_force_closes_open_spans():
    obs.start("t")
    handle = obs.span("left-open")
    handle.__enter__()
    session = obs.stop()
    assert session.spans[0].t_end is not None


def test_observed_scoped_ownership():
    with obs.observed("outer") as session:
        assert obs.active() is session
        # A nested observed() must not steal or stop the outer session.
        with obs.observed("inner") as inner:
            assert inner is session
        assert obs.enabled()
    assert not obs.enabled()


def test_span_add_without_open_span():
    obs.start("t")
    obs.span_add("loose", 4)  # counts even though no span is open
    session = obs.stop()
    assert session.metrics.counter("loose").value == 4
    assert session.spans == []


def test_time_phase_records_timer():
    obs.start("t")
    with obs.time_phase("io"):
        sum(range(100))
    session = obs.stop()
    t = session.metrics.timer("io")
    assert t.count == 1
    assert t.total >= 0.0
