"""Distributed-FFT surrogate: compute + global transpose each stage.

Multidimensional FFTs alternate local 1-D transforms with global data
transposes (MPI_Alltoall) — the canonical *bisection-bandwidth-bound*
pattern, complementary to the latency-bound token ring and the
collective-latency-bound CG iteration.  Each rank holds n/p rows; a
transpose moves n/p² rows to every other rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Alltoall, Compute, Op, RankInfo

__all__ = ["FFTTransposeParams", "fft_transpose"]


@dataclass(frozen=True)
class FFTTransposeParams:
    """Configuration of the FFT-transpose surrogate.

    stages:
        Transform/transpose rounds (a 2-D FFT needs 2, 3-D needs 3;
        iterative solvers repeat).
    block_bytes:
        Bytes each rank sends to each other rank per transpose
        (n/p² rows worth of data).
    transform_cycles:
        Local 1-D transform work per stage.
    """

    stages: int = 4
    block_bytes: int = 4096
    transform_cycles: float = 60_000.0

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValueError("stages must be >= 1")
        if self.block_bytes < 0 or self.transform_cycles < 0:
            raise ValueError("block_bytes and transform_cycles must be >= 0")


def fft_transpose(params: FFTTransposeParams = FFTTransposeParams()):
    """Rank program factory for the transpose-heavy FFT surrogate."""

    def program(me: RankInfo) -> Iterator[Op]:
        for _ in range(params.stages):
            yield Compute(params.transform_cycles)
            yield Alltoall(nbytes=params.block_bytes)

    return program
