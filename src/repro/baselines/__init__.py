"""Baseline trace-analysis systems the paper compares against (§1.1)."""

from repro.baselines.dimemas import ReplayParams, ReplayResult, replay, replay_ladder

__all__ = ["ReplayParams", "ReplayResult", "replay", "replay_ladder"]
