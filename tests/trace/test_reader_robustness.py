"""Robustness of trace readers against damaged files."""

import pytest

from repro.trace.events import EventKind, EventRecord, TraceMeta
from repro.trace.reader import TraceReader, TraceSet
from repro.trace.writer import TraceSetWriter, TraceWriter


def make_events(rank, n):
    return [
        EventRecord(rank=rank, seq=i, kind=EventKind.SEND, t_start=float(i), t_end=i + 0.5)
        for i in range(n)
    ]


def write_one(tmp_path, binary=False, n=5):
    suffix = "bin" if binary else "jsonl"
    path = tmp_path / f"t.trace.{suffix}"
    with TraceWriter(path, TraceMeta(rank=0, nprocs=1), binary=binary) as w:
        w.record_all(make_events(0, n))
    return path


class TestTextDamage:
    def test_truncated_tail_line(self, tmp_path):
        path = write_one(tmp_path)
        data = path.read_text()
        path.write_text(data[: len(data) - 20])  # cut into the last record
        reader = TraceReader(path)
        with pytest.raises(ValueError):
            list(reader.events())

    def test_garbage_line(self, tmp_path):
        path = write_one(tmp_path)
        with open(path, "a") as fh:
            fh.write("this is not json\n")
        with pytest.raises(Exception):
            list(TraceReader(path).events())

    def test_wrong_arity_line(self, tmp_path):
        path = write_one(tmp_path)
        with open(path, "a") as fh:
            fh.write("[1,2,3]\n")
        with pytest.raises(ValueError, match="malformed"):
            list(TraceReader(path).events())

    def test_blank_lines_tolerated(self, tmp_path):
        path = write_one(tmp_path, n=3)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(list(TraceReader(path).events())) == 3

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.trace.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            TraceReader(path)


class TestBinaryDamage:
    def test_truncated_record(self, tmp_path):
        path = write_one(tmp_path, binary=True)
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])
        with pytest.raises(ValueError, match="truncated"):
            list(TraceReader(path).events())

    def test_corrupt_header_length(self, tmp_path):
        path = write_one(tmp_path, binary=True)
        blob = bytearray(path.read_bytes())
        blob[8:12] = (2**31 - 1).to_bytes(4, "little")  # absurd header size
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            TraceReader(path)

    def test_random_bytes_file(self, tmp_path):
        path = tmp_path / "junk.trace.bin"
        path.write_bytes(b"\x99" * 100)
        with pytest.raises(ValueError, match="magic"):
            TraceReader(path)


class TestSetRobustness:
    def test_one_damaged_rank_detected_on_read(self, tmp_path):
        with TraceSetWriter(tmp_path, "s", nprocs=2) as ws:
            for r in range(2):
                for e in make_events(r, 4):
                    ws.record(e)
        victim = tmp_path / "s.rank0001.trace.jsonl"
        data = victim.read_text()
        victim.write_text(data[:-15])
        ts = TraceSet.open(tmp_path, "s")  # headers intact: open succeeds
        with pytest.raises(Exception):
            ts.load_all()
