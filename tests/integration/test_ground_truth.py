"""VAL1: graph-model predictions vs simulator ground truth.

The paper could not cheaply validate its perturbation model against
reality; our simulator can.  Protocol: trace an app on a *quiet*
machine, predict its noisy runtime via graph perturbation, then actually
re-run the app on the *noisy* machine and compare the runtime increases.
The delta model is an approximation (hub collectives, per-edge noise
sampling), so we assert agreement in order of magnitude and in
*direction* (who is hurt more), not cycle-exactness.
"""

import pytest

from repro.apps import (
    AllreduceIterParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    stencil1d,
    token_ring,
)
from repro.core import PerturbationSpec, build_graph, propagate
from repro.mpisim import Machine, NetworkModel, run
from repro.noise import Constant, DistributionNoise, MachineSignature

NET = NetworkModel(latency=800.0, bandwidth=4.0, send_overhead=100.0, recv_overhead=100.0)


def predicted_vs_actual(prog, p, noise_mean, seed=0):
    quiet = Machine(nprocs=p, network=NET, name="quiet")
    noisy = Machine(
        nprocs=p,
        network=NET,
        noise=DistributionNoise(Constant(noise_mean)),
        name="noisy",
    )
    base = run(prog, machine=quiet, seed=seed)
    actual = run(prog, machine=noisy, seed=seed)
    actual_delta = actual.makespan - base.makespan

    sig = MachineSignature(os_noise=Constant(noise_mean))
    pred = propagate(build_graph(base.trace), PerturbationSpec(sig, seed=seed))
    return pred.max_delay, actual_delta


@pytest.mark.parametrize(
    "name,prog,p",
    [
        ("token_ring", token_ring(TokenRingParams(traversals=4)), 6),
        ("stencil", stencil1d(StencilParams(iterations=5)), 6),
        ("allreduce_iter", allreduce_iter(AllreduceIterParams(iterations=6)), 6),
    ],
)
def test_prediction_magnitude(name, prog, p):
    predicted, actual = predicted_vs_actual(prog, p, noise_mean=500.0)
    assert actual > 0
    assert predicted > 0
    # Same order of magnitude: the model samples one δ_os per local edge
    # while the engine injects noise per processing segment, so factors of
    # a few are expected — factors of 10 are not.
    ratio = predicted / actual
    assert 0.2 < ratio < 6.0, f"{name}: predicted {predicted:.0f} vs actual {actual:.0f}"


def test_prediction_tracks_noise_scaling():
    """Doubling injected noise should roughly double both the actual and
    the predicted runtime increase."""
    prog = token_ring(TokenRingParams(traversals=3))
    p1, a1 = predicted_vs_actual(prog, 5, noise_mean=300.0)
    p2, a2 = predicted_vs_actual(prog, 5, noise_mean=600.0)
    assert p2 == pytest.approx(2 * p1, rel=0.05)
    assert a2 == pytest.approx(2 * a1, rel=0.3)


def test_prediction_direction_across_apps():
    """The model must rank application sensitivity the same way the
    machine does: lockstep ring suffers more total slowdown than the
    overlap-friendly stencil for identical per-node noise."""
    ring_pred, ring_act = predicted_vs_actual(
        token_ring(TokenRingParams(traversals=4, compute_cycles=10_000.0)), 5, 400.0
    )
    st_pred, st_act = predicted_vs_actual(
        stencil1d(StencilParams(iterations=4, interior_cycles=10_000.0)), 5, 400.0
    )
    assert (ring_act > st_act) == (ring_pred > st_pred)
