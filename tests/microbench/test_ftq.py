"""Tests for the FTQ microbenchmark (§5.1)."""

import numpy as np
import pytest

from repro.microbench.ftq import run_ftq
from repro.noise.distributions import Constant, Exponential
from repro.noise.models import NO_NOISE, DistributionNoise, PeriodicDaemon, RandomPreemption


class TestBasics:
    def test_noiseless_machine_zero_loss(self):
        res = run_ftq(NO_NOISE, quanta=64)
        assert all(l == 0.0 for l in res.loss)
        assert res.mean_loss() == 0.0
        assert np.all(res.work == res.quantum)

    def test_constant_noise_recovered(self):
        model = DistributionNoise(Constant(123.0))
        res = run_ftq(model, quanta=128, quantum=10_000.0)
        assert res.mean_loss() == pytest.approx(123.0)
        assert np.all(res.work == 10_000.0 - 123.0)

    def test_preemption_mean_recovered(self):
        """FTQ recovers the generator's expected per-quantum loss without
        knowing its parameters — the §5 measurement loop."""
        rate, cost = 1e-4, 300.0
        model = RandomPreemption(rate=rate, cost=Constant(cost))
        res = run_ftq(model, quanta=4096, quantum=10_000.0, seed=1)
        expected = rate * 10_000.0 * cost
        assert res.mean_loss() == pytest.approx(expected, rel=0.1)

    def test_empirical_distribution_built(self):
        model = RandomPreemption(rate=2e-4, cost=Exponential(200.0))
        res = run_ftq(model, quanta=2048, quantum=10_000.0, seed=2)
        dist = res.noise_distribution()
        assert dist.size() == 2048
        assert dist.mean() == pytest.approx(res.mean_loss())

    def test_deterministic_in_seed(self):
        model = RandomPreemption(rate=1e-3, cost=Exponential(50.0))
        a = run_ftq(model, quanta=64, seed=5)
        b = run_ftq(model, quanta=64, seed=5)
        assert a.loss == b.loss

    def test_validation(self):
        with pytest.raises(ValueError):
            run_ftq(NO_NOISE, quanta=0)
        with pytest.raises(ValueError):
            run_ftq(NO_NOISE, quantum=0.0)


class TestPeriodicityDetection:
    def test_detects_daemon_period(self):
        """The signature FTQ result: a periodic daemon shows up as a
        spectral peak at its firing period."""
        quantum = 10_000.0
        period_quanta = 16
        model = PeriodicDaemon(period=quantum * period_quanta, cost=Constant(500.0))
        res = run_ftq(model, quanta=1024, quantum=quantum, seed=0)
        est = res.periodicity_estimate()
        assert est is not None
        assert est == pytest.approx(period_quanta, rel=0.3)

    def test_no_false_positive_on_constant(self):
        res = run_ftq(DistributionNoise(Constant(10.0)), quanta=256)
        assert res.periodicity_estimate() is None

    def test_no_false_positive_on_white_noise(self):
        res = run_ftq(DistributionNoise(Exponential(10.0)), quanta=512, seed=3)
        # White noise has a flat spectrum: the 4x-mean peak test should
        # not fire (allow rare flakes by fixing the seed).
        assert res.periodicity_estimate() is None
