"""Tests for the execution-backend abstraction (parallel replicates).

The load-bearing property is at the top: a backend only changes *where*
each replicate runs, never *what* it computes, so parallel results are
bit-for-bit identical to serial ones for the same base seed.
"""

import warnings

import numpy as np
import pytest

from repro.core import (
    PerturbationSpec,
    ProcessPoolBackend,
    SerialBackend,
    build_graph,
    map_replicates,
    monte_carlo,
    rank_influence,
    replicate_items,
    resolve_backend,
    sweep_scales,
)
from repro.core.montecarlo import DelayDistribution
from repro.core.parallel import available_cpus, chunked, default_chunk_size
from repro.noise import Exponential, MachineSignature


@pytest.fixture(scope="module")
def ring_build(ring_trace):
    return build_graph(ring_trace)


def spec(seed=0, scale=1.0, mean=100.0):
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(mean), latency=Exponential(40.0)),
        seed=seed,
        scale=scale,
    )


class TestBackendSelection:
    def test_jobs_zero_is_serial(self):
        assert isinstance(resolve_backend(0), SerialBackend)

    def test_jobs_one_is_serial(self):
        # A one-worker pool is pure pickling overhead.
        assert isinstance(resolve_backend(1), SerialBackend)

    def test_jobs_none_is_auto(self):
        backend = resolve_backend(None)
        cores = available_cpus()
        if cores >= 2:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.jobs == cores
        else:
            assert isinstance(backend, SerialBackend)

    def test_available_cpus_respects_affinity(self):
        # Containers/cgroups often pin fewer cpus than os.cpu_count()
        # reports; auto sizing must follow the schedulable set.
        import os

        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == len(os.sched_getaffinity(0))
        else:  # pragma: no cover - non-Linux
            assert available_cpus() == (os.cpu_count() or 1)

    def test_jobs_n_is_pool(self):
        backend = resolve_backend(3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(-1)

    def test_pool_needs_two_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, chunk_size=0)


class TestChunking:
    def test_chunks_concatenate_in_order(self):
        items = list(range(10))
        chunks = chunked(items, 3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [x for c in chunks for x in c] == items

    def test_single_chunk_when_size_covers_all(self):
        assert chunked([1, 2], 5) == [[1, 2]]

    def test_empty_items(self):
        assert chunked([], 4) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_default_chunk_size_targets_four_per_worker(self):
        assert default_chunk_size(160, 4) == 10

    def test_default_chunk_size_fewer_items_than_jobs(self):
        # replicates < jobs degenerates to one item per chunk.
        assert default_chunk_size(3, 8) == 1

    def test_default_chunk_size_no_items(self):
        assert default_chunk_size(0, 4) == 1


class TestReplicateItems:
    def test_schedule_is_consecutive_seeds(self):
        s = spec(seed=7)
        items = replicate_items(s, 3)
        assert [seed for seed, _ in items] == [7, 8, 9]
        assert all(sp is s for _, sp in items)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            replicate_items(spec(), 0)


class TestSerialParallelEquality:
    """The determinism guarantee: bitwise-equal results for any jobs."""

    def test_monte_carlo_samples_bitwise_equal(self, ring_build):
        s = spec(seed=42)
        serial = monte_carlo(ring_build, s, replicates=12, jobs=0)
        parallel = monte_carlo(ring_build, s, replicates=12, jobs=2)
        assert np.array_equal(serial.samples, parallel.samples)
        assert serial.seeds == parallel.seeds

    def test_replicates_fewer_than_jobs(self, ring_build):
        # Chunking edge case: 2 replicates over a 4-worker pool.
        s = spec(seed=5)
        serial = monte_carlo(ring_build, s, replicates=2, jobs=0)
        parallel = monte_carlo(ring_build, s, replicates=2, jobs=4)
        assert np.array_equal(serial.samples, parallel.samples)

    def test_explicit_chunk_sizes_equal(self, ring_build):
        s = spec(seed=3)
        reference = monte_carlo(ring_build, s, replicates=7, jobs=0)
        for size in (1, 3, 7):
            dist = monte_carlo(ring_build, s, replicates=7, jobs=2, chunk_size=size)
            assert np.array_equal(reference.samples, dist.samples)

    def test_sweep_scales_equal(self, ring_trace):
        scales = [0.5, 1.0, 2.0]
        serial = sweep_scales(ring_trace, spec(seed=9), scales, jobs=0)
        parallel = sweep_scales(ring_trace, spec(seed=9), scales, jobs=2)
        for a, b in zip(serial.points, parallel.points):
            assert a.delays == b.delays
            assert a.max_delay == b.max_delay

    def test_rank_influence_equal(self, ring_build):
        serial = rank_influence(ring_build, Exponential(100.0), seed=1, jobs=0)
        parallel = rank_influence(ring_build, Exponential(100.0), seed=1, jobs=2)
        assert np.array_equal(serial.matrix, parallel.matrix)

    def test_map_replicates_empty_pool_items(self, ring_build):
        assert map_replicates(ring_build, [], jobs=2) == []


class TestFallback:
    def test_broken_pool_degrades_to_serial(self, ring_build, monkeypatch):
        """Platforms without working process pools warn and run serially,
        producing the same results."""

        def boom(*args, **kwargs):
            raise OSError("no process support")

        monkeypatch.setattr("repro.core.parallel.ProcessPoolExecutor", boom)
        s = spec(seed=8)
        reference = monte_carlo(ring_build, s, replicates=4, jobs=0)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            dist = monte_carlo(ring_build, s, replicates=4, jobs=2)
        assert np.array_equal(reference.samples, dist.samples)

    def test_no_warning_on_healthy_path(self, ring_build):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            monte_carlo(ring_build, spec(), replicates=2, jobs=2)


class TestDistributionValidation:
    def test_rejects_non_2d_samples(self):
        with pytest.raises(ValueError, match="2-D"):
            DelayDistribution(samples=np.zeros(4), seeds=(0,))

    def test_rejects_row_seed_mismatch(self):
        with pytest.raises(ValueError, match="seeds"):
            DelayDistribution(samples=np.zeros((3, 2)), seeds=(0, 1))

    def test_seeds_are_tuple(self, ring_build):
        dist = monte_carlo(ring_build, spec(), replicates=2)
        assert isinstance(dist.seeds, tuple)
