"""Parameter estimation for assumed distribution families (§5, method 1).

Given microbenchmark samples, estimate the parameters of an assumed
family (exponential, normal, log-normal, gamma, pareto) and report the
goodness of fit (one-sample Kolmogorov–Smirnov via scipy).  The
``fit_best`` helper tries every family and returns the one with the
smallest KS statistic — the automated version of "pick a model that
looks right", useful when sweeping many machine signatures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats

from repro.noise.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Pareto,
    RandomVariable,
    Weibull,
)
from repro.noise.empirical import Empirical

__all__ = [
    "FitResult",
    "fit_exponential",
    "fit_normal",
    "fit_lognormal",
    "fit_gamma",
    "fit_pareto",
    "fit_weibull",
    "fit_best",
    "FAMILIES",
]


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one family to a sample set."""

    family: str
    distribution: RandomVariable
    ks_statistic: float
    ks_pvalue: float

    def acceptable(self, alpha: float = 0.05) -> bool:
        """True when the KS test does *not* reject the fit at level ``alpha``."""
        return self.ks_pvalue >= alpha


def _as_array(samples: Sequence[float], positive: bool = False) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("fitting requires at least two 1-D samples")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples must be finite")
    if positive and np.any(arr <= 0):
        raise ValueError("this family requires strictly positive samples")
    return arr


def _ks(arr: np.ndarray, cdf: Callable, args: tuple) -> tuple[float, float]:
    res = stats.kstest(arr, cdf, args=args)
    return float(res.statistic), float(res.pvalue)


def fit_exponential(samples: Sequence[float]) -> FitResult:
    """MLE exponential fit: mean = sample mean."""
    arr = _as_array(samples)
    if np.any(arr < 0):
        raise ValueError("exponential requires nonnegative samples")
    mean = float(arr.mean())
    if mean <= 0:
        raise ValueError("exponential fit requires a positive sample mean")
    ks, pv = _ks(arr, "expon", (0.0, mean))
    return FitResult("exponential", Exponential(mean), ks, pv)


def fit_normal(samples: Sequence[float]) -> FitResult:
    """MLE normal fit: (sample mean, sample std)."""
    arr = _as_array(samples)
    mu, sigma = float(arr.mean()), float(arr.std())
    sigma = max(sigma, 1e-12)
    ks, pv = _ks(arr, "norm", (mu, sigma))
    return FitResult("normal", Normal(mu, sigma), ks, pv)


def fit_lognormal(samples: Sequence[float]) -> FitResult:
    """MLE log-normal fit on log-samples."""
    arr = _as_array(samples, positive=True)
    logs = np.log(arr)
    mu, sigma = float(logs.mean()), float(logs.std())
    sigma = max(sigma, 1e-12)
    ks, pv = _ks(arr, "lognorm", (sigma, 0.0, math.exp(mu)))
    return FitResult("lognormal", LogNormal(mu, sigma), ks, pv)


def fit_gamma(samples: Sequence[float]) -> FitResult:
    """Method-of-moments gamma fit (robust, no iteration)."""
    arr = _as_array(samples, positive=True)
    mean, var = float(arr.mean()), float(arr.var())
    var = max(var, 1e-24)
    shape = mean**2 / var
    scale = var / mean
    ks, pv = _ks(arr, "gamma", (shape, 0.0, scale))
    return FitResult("gamma", Gamma(shape, scale), ks, pv)


def fit_pareto(samples: Sequence[float]) -> FitResult:
    """Hill-style MLE Pareto fit (minimum = sample min)."""
    arr = _as_array(samples, positive=True)
    xm = float(arr.min())
    ratios = np.log(arr / xm)
    mean_log = float(ratios.mean())
    alpha = 1.0 / max(mean_log, 1e-12)
    ks, pv = _ks(arr, "pareto", (alpha, 0.0, xm))
    return FitResult("pareto", Pareto(alpha, xm), ks, pv)


def fit_weibull(samples: Sequence[float]) -> FitResult:
    """Weibull fit via scipy's MLE (location pinned at 0)."""
    arr = _as_array(samples, positive=True)
    shape, _loc, scale = stats.weibull_min.fit(arr, floc=0.0)
    ks, pv = _ks(arr, "weibull_min", (shape, 0.0, scale))
    return FitResult("weibull", Weibull(shape, scale), ks, pv)


FAMILIES: dict[str, Callable[[Sequence[float]], FitResult]] = {
    "exponential": fit_exponential,
    "normal": fit_normal,
    "lognormal": fit_lognormal,
    "gamma": fit_gamma,
    "pareto": fit_pareto,
    "weibull": fit_weibull,
}


def fit_best(
    samples: Sequence[float],
    families: Sequence[str] | None = None,
    fallback_empirical: bool = True,
) -> FitResult:
    """Fit every requested family and return the best by KS statistic.

    When no family fits (e.g. multimodal daemon noise) and
    ``fallback_empirical`` is set, returns an :class:`Empirical`
    distribution instead — mirroring the paper's position that empirical
    distributions are the safe general answer.
    """
    names = list(families) if families is not None else list(FAMILIES)
    results: list[FitResult] = []
    for name in names:
        if name not in FAMILIES:
            raise KeyError(f"unknown family {name!r}; choose from {sorted(FAMILIES)}")
        try:
            results.append(FAMILIES[name](samples))
        except ValueError:
            continue  # family inapplicable to this sample's support
    if results:
        best = min(results, key=lambda r: r.ks_statistic)
        if best.acceptable() or not fallback_empirical:
            return best
    if not fallback_empirical:
        raise ValueError("no parametric family could be fitted")
    emp = Empirical(samples)
    return FitResult("empirical", emp, 0.0, 1.0)
