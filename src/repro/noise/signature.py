"""Machine signatures: the parameter bundle handed to the analyzer.

Section 5: "Each parallel platform has a signature that is defined by
the set of metrics determined by various microbenchmarks, and this
signature is provided to the analysis tools, along with an application
trace, to estimate the behavior of the program on the new platform."

A :class:`MachineSignature` collects, as random variables:

``os_noise``
    per-local-edge OS interference δ_os (per-rank overrides supported);
``latency``
    per-message-edge latency perturbation δ_λ (per-link overrides);
``per_byte``
    the data-proportional perturbation rate: δ_t(d) = d · per_byte draw.

Everything is seed-stable and JSON round-trippable so a signature can be
measured once (``repro-microbench``) and replayed across experiments.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro._util import atomic_write_text
from repro.noise.distributions import RandomVariable, ZERO
from repro.noise.serialize import from_jsonable, to_jsonable

__all__ = ["MachineSignature"]


def _link_key(src: int, dst: int) -> str:
    return f"{src}->{dst}"


@dataclass(frozen=True)
class MachineSignature:
    """Distributional description of a platform (§5).

    Parameters
    ----------
    os_noise:
        Default δ_os distribution applied to local edges.
    latency:
        Default δ_λ distribution applied to message edges.
    per_byte:
        Distribution of the per-byte perturbation rate; the sampled
        bandwidth delta for a ``d``-byte transfer is ``d * draw``.
    os_noise_by_rank:
        Optional per-rank overrides of ``os_noise``.
    latency_by_link:
        Optional per-directed-link ``(src, dst)`` overrides of ``latency``.
    name:
        Human-readable platform label (shows up in experiment history).
    os_quantum:
        Measurement quantum of ``os_noise`` in cycles (e.g. the FTQ
        quantum, §5.1).  0 (default) means the distribution is applied
        once per local edge regardless of the edge's length — the
        paper's model.  When positive, the analyzer draws one sample per
        quantum of *observed* edge duration, so long compute phases
        accumulate proportionally more interference (the
        interval-scaled extension ablated in ABL3; see DESIGN.md §4).
    """

    os_noise: RandomVariable = ZERO
    latency: RandomVariable = ZERO
    per_byte: RandomVariable = ZERO
    os_noise_by_rank: Mapping[int, RandomVariable] = field(default_factory=dict)
    latency_by_link: Mapping[tuple[int, int], RandomVariable] = field(default_factory=dict)
    name: str = "unnamed"
    os_quantum: float = 0.0

    # -- lookups ---------------------------------------------------------------
    def os_noise_for(self, rank: int) -> RandomVariable:
        """δ_os distribution for a specific rank."""
        return self.os_noise_by_rank.get(rank, self.os_noise)

    def latency_for(self, src: int, dst: int) -> RandomVariable:
        """δ_λ distribution for the directed link ``src -> dst``."""
        return self.latency_by_link.get((src, dst), self.latency)

    # -- sampling helpers used by the perturbation engine -----------------------
    def sample_os(self, rng: np.random.Generator, rank: int) -> float:
        return max(self.os_noise_for(rank).sample(rng), 0.0)

    def sample_latency(self, rng: np.random.Generator, src: int, dst: int) -> float:
        return max(self.latency_for(src, dst).sample(rng), 0.0)

    def sample_transfer(self, rng: np.random.Generator, nbytes: int) -> float:
        """δ_t(d): data-size-proportional perturbation for ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return max(self.per_byte.sample(rng), 0.0) * nbytes

    def os_draws(self, interval: float) -> int:
        """Number of δ_os samples for a local edge of ``interval`` cycles:
        1 in the paper's per-edge model, one per measurement quantum in
        the interval-scaled extension (see ``os_quantum``)."""
        if self.os_quantum <= 0.0 or interval <= 0.0:
            return 1
        return max(1, math.ceil(interval / self.os_quantum))

    def sample_os_interval(
        self, rng: np.random.Generator, rank: int, interval: float
    ) -> float:
        """δ_os for a local edge spanning ``interval`` observed cycles."""
        k = self.os_draws(interval)
        if k == 1:
            return self.sample_os(rng, rank)
        draws = self.os_noise_for(rank).sample_n(rng, k)
        return float(np.sum(np.maximum(draws, 0.0)))

    # -- derived signatures ------------------------------------------------------
    def scaled(self, factor: float, name: str | None = None) -> "MachineSignature":
        """Signature with every distribution scaled by ``factor``.

        The sweep harness (§6's "varying degrees of noise") is built on
        this: one measured signature, a ladder of scale factors.
        """
        return MachineSignature(
            os_noise=self.os_noise.scaled(factor),
            latency=self.latency.scaled(factor),
            per_byte=self.per_byte.scaled(factor),
            os_noise_by_rank={r: v.scaled(factor) for r, v in self.os_noise_by_rank.items()},
            latency_by_link={k: v.scaled(factor) for k, v in self.latency_by_link.items()},
            name=name or f"{self.name} x{factor:g}",
            os_quantum=self.os_quantum,
        )

    def quiet(self) -> "MachineSignature":
        """The zero-perturbation version of this signature."""
        return MachineSignature(name=f"{self.name} (quiet)")

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "os_quantum": self.os_quantum,
            "os_noise": to_jsonable(self.os_noise),
            "latency": to_jsonable(self.latency),
            "per_byte": to_jsonable(self.per_byte),
            "os_noise_by_rank": {str(r): to_jsonable(v) for r, v in self.os_noise_by_rank.items()},
            "latency_by_link": {
                _link_key(s, t): to_jsonable(v) for (s, t), v in self.latency_by_link.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSignature":
        by_rank = {int(r): from_jsonable(v) for r, v in data.get("os_noise_by_rank", {}).items()}
        by_link = {}
        for key, v in data.get("latency_by_link", {}).items():
            src, dst = key.split("->")
            by_link[(int(src), int(dst))] = from_jsonable(v)
        return cls(
            os_noise=from_jsonable(data["os_noise"]),
            latency=from_jsonable(data["latency"]),
            per_byte=from_jsonable(data["per_byte"]),
            os_noise_by_rank=by_rank,
            latency_by_link=by_link,
            name=data.get("name", "unnamed"),
            os_quantum=data.get("os_quantum", 0.0),
        )

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "MachineSignature":
        return cls.from_dict(json.loads(Path(path).read_text()))
