"""Unit tests for the parametric perturbation distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.distributions import (
    ZERO,
    BernoulliSpike,
    Constant,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Normal,
    Pareto,
    RandomVariable,
    TruncatedNormal,
    Uniform,
)

N = 20_000


def _stats_close(dist, rng, rel=0.08):
    samples = dist.sample_n(rng, N)
    assert samples.shape == (N,)
    assert np.mean(samples) == pytest.approx(dist.mean(), rel=rel, abs=1e-9)
    if math.isfinite(dist.var()):
        assert np.var(samples) == pytest.approx(dist.var(), rel=max(rel * 3, 0.2), abs=1e-9)


class TestConstant:
    def test_always_value(self, rng):
        c = Constant(42.5)
        assert c.sample(rng) == 42.5
        assert np.all(c.sample_n(rng, 10) == 42.5)
        assert c.mean() == 42.5
        assert c.var() == 0.0

    def test_zero_singleton(self, rng):
        assert ZERO.sample(rng) == 0.0

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Constant(float("nan"))
        with pytest.raises(ValueError):
            Constant(float("inf"))

    def test_satisfies_protocol(self):
        assert isinstance(Constant(1.0), RandomVariable)


class TestUniform:
    def test_moments(self, rng):
        _stats_close(Uniform(10.0, 50.0), rng)

    def test_bounds(self, rng):
        s = Uniform(2.0, 3.0).sample_n(rng, 1000)
        assert np.all((s >= 2.0) & (s <= 3.0))

    def test_degenerate(self, rng):
        assert Uniform(5.0, 5.0).sample(rng) == 5.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 2.0)


class TestExponential:
    def test_moments(self, rng):
        _stats_close(Exponential(120.0), rng)

    def test_nonnegative(self, rng):
        assert np.all(Exponential(10.0).sample_n(rng, 1000) >= 0.0)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential(-1.0)


class TestNormal:
    def test_moments(self, rng):
        _stats_close(Normal(100.0, 15.0), rng)

    def test_zero_sigma(self, rng):
        assert Normal(5.0, 0.0).sample(rng) == 5.0

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)


class TestTruncatedNormal:
    def test_lower_bound_respected(self, rng):
        t = TruncatedNormal(mu=0.0, sigma=50.0, lower=0.0)
        s = t.sample_n(rng, 5000)
        assert np.all(s >= 0.0)

    def test_moments(self, rng):
        _stats_close(TruncatedNormal(mu=10.0, sigma=30.0, lower=0.0), rng)

    def test_untruncated_limit(self, rng):
        # Lower bound far below the mass: behaves like a plain normal.
        t = TruncatedNormal(mu=100.0, sigma=5.0, lower=-1000.0)
        assert t.mean() == pytest.approx(100.0, rel=1e-6)
        assert t.var() == pytest.approx(25.0, rel=1e-4)


class TestLogNormal:
    def test_moments(self, rng):
        _stats_close(LogNormal(3.0, 0.5), rng)

    def test_positive(self, rng):
        assert np.all(LogNormal(0.0, 1.0).sample_n(rng, 1000) > 0.0)


class TestGamma:
    def test_moments(self, rng):
        _stats_close(Gamma(shape=4.0, scale=25.0), rng)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(1.0, 0.0)


class TestPareto:
    def test_minimum_respected(self, rng):
        s = Pareto(alpha=3.0, minimum=100.0).sample_n(rng, 2000)
        assert np.all(s >= 100.0)

    def test_moments_finite_alpha(self, rng):
        _stats_close(Pareto(alpha=5.0, minimum=10.0), rng, rel=0.1)

    def test_infinite_moments(self):
        assert Pareto(alpha=0.9, minimum=1.0).mean() == math.inf
        assert Pareto(alpha=1.5, minimum=1.0).var() == math.inf
        assert math.isfinite(Pareto(alpha=2.5, minimum=1.0).var())


class TestBernoulliSpike:
    def test_mostly_zero(self, rng):
        b = BernoulliSpike(p=0.1, spike=Constant(1000.0))
        s = b.sample_n(rng, 10_000)
        frac = np.mean(s > 0)
        assert frac == pytest.approx(0.1, abs=0.02)
        assert np.all(np.isin(s, [0.0, 1000.0]))

    def test_moments(self, rng):
        _stats_close(BernoulliSpike(p=0.3, spike=Exponential(200.0)), rng)

    def test_p_zero_and_one(self, rng):
        assert BernoulliSpike(0.0, Constant(5.0)).sample(rng) == 0.0
        assert BernoulliSpike(1.0, Constant(5.0)).sample(rng) == 5.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BernoulliSpike(1.5, Constant(1.0))


class TestMixture:
    def test_moments(self, rng):
        m = Mixture([Constant(10.0), Constant(30.0)], [1.0, 3.0])
        assert m.mean() == pytest.approx(25.0)
        _stats_close(m, rng)

    def test_weights_normalized(self):
        m = Mixture([Constant(1.0), Constant(2.0)], [2.0, 2.0])
        assert m.weights == (0.5, 0.5)

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], [-1.0])


class TestCombinators:
    def test_shifted(self, rng):
        s = Exponential(50.0).shifted(100.0)
        assert s.mean() == pytest.approx(150.0)
        assert s.var() == pytest.approx(2500.0)
        assert np.all(s.sample_n(rng, 1000) >= 100.0)

    def test_scaled(self, rng):
        s = Exponential(50.0).scaled(3.0)
        assert s.mean() == pytest.approx(150.0)
        assert s.var() == pytest.approx(2500.0 * 9)
        _stats_close(s, rng)

    def test_nested(self, rng):
        s = Constant(10.0).scaled(2.0).shifted(5.0)
        assert s.sample(rng) == 25.0


@given(
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    factor=st.floats(min_value=-100, max_value=100, allow_nan=False),
    offset=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)
@settings(max_examples=50, deadline=None)
def test_affine_combinators_property(value, factor, offset):
    """scaled/shifted of a constant is exact affine arithmetic."""
    rng = np.random.default_rng(0)
    dist = Constant(value).scaled(factor).shifted(offset)
    assert dist.sample(rng) == pytest.approx(value * factor + offset, rel=1e-12, abs=1e-9)
    assert dist.mean() == pytest.approx(value * factor + offset, rel=1e-12, abs=1e-9)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_sampling_deterministic_in_seed(seed):
    """Identical generators yield identical draws for every family."""
    dists = [
        Exponential(10.0),
        Normal(0.0, 1.0),
        LogNormal(1.0, 0.3),
        Gamma(2.0, 3.0),
        Pareto(2.5, 1.0),
        Uniform(0.0, 5.0),
        BernoulliSpike(0.5, Exponential(4.0)),
    ]
    for d in dists:
        a = d.sample_n(np.random.default_rng(seed), 8)
        b = d.sample_n(np.random.default_rng(seed), 8)
        assert np.array_equal(a, b)


class TestWeibull:
    def test_moments(self, rng):
        from repro.noise.distributions import Weibull

        _stats_close(Weibull(shape=1.5, scale=100.0), rng)

    def test_shape_one_is_exponential(self, rng):
        from repro.noise.distributions import Weibull

        w = Weibull(shape=1.0, scale=50.0)
        assert w.mean() == pytest.approx(50.0)
        assert w.var() == pytest.approx(2500.0)

    def test_positive_support(self, rng):
        from repro.noise.distributions import Weibull

        assert np.all(Weibull(0.7, 10.0).sample_n(rng, 1000) >= 0.0)

    def test_rejects_bad_params(self):
        from repro.noise.distributions import Weibull

        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -2.0)
