"""Tests for trace statistics."""

import pytest

from repro.apps import TokenRingParams, token_ring
from repro.mpisim import Compute, Recv, Send, Sendrecv, run
from repro.trace.stats import trace_stats


class TestRing:
    @pytest.fixture(scope="class")
    def stats(self):
        trace = run(
            token_ring(TokenRingParams(traversals=3, token_bytes=1000)), nprocs=4, seed=0
        ).trace
        return trace_stats(trace)

    def test_counts(self, stats):
        assert stats.nprocs == 4
        for r in stats.ranks:
            assert r.messages_sent == 3
            assert r.messages_received == 3
            assert r.bytes_sent == 3000
            assert r.bytes_received == 3000

    def test_comm_matrix_is_ring(self, stats):
        for src in range(4):
            for dst in range(4):
                expected = 3000 if dst == (src + 1) % 4 else 0
                assert stats.comm_matrix[src, dst] == expected

    def test_time_decomposition_partitions_runtime(self, stats):
        for r in stats.ranks:
            assert r.compute_time + r.message_time == pytest.approx(r.runtime)
            assert 0.0 <= r.compute_fraction <= 1.0
            assert r.compute_fraction + r.message_fraction == pytest.approx(1.0)

    def test_kind_counts(self, stats):
        assert stats.kind_counts["SEND"] == 12
        assert stats.kind_counts["RECV"] == 12
        assert stats.kind_counts["INIT"] == 4

    def test_heaviest_channel(self, stats):
        src, dst, nbytes = stats.heaviest_channel()
        assert nbytes == 3000
        assert dst == (src + 1) % 4

    def test_summary_renders(self, stats):
        text = stats.summary()
        assert "4 ranks" in text
        assert "busiest channel" in text


class TestSendrecvAccounting:
    def test_both_halves_counted(self):
        def prog(me):
            yield Compute(100.0)
            yield Sendrecv(
                dest=(me.rank + 1) % me.size,
                send_nbytes=500,
                source=(me.rank - 1) % me.size,
            )

        stats = trace_stats(run(prog, nprocs=3, seed=0).trace)
        for r in stats.ranks:
            assert r.bytes_sent == 500
            assert r.bytes_received == 500
        assert stats.total_bytes == 1500


class TestComputeBoundDetection:
    def test_compute_heavy_vs_message_heavy(self):
        def compute_heavy(me):
            if me.rank == 0:
                yield Compute(1_000_000.0)
                yield Send(dest=1, nbytes=8)
            else:
                yield Recv(source=0)

        stats = trace_stats(run(compute_heavy, nprocs=2, seed=0).trace)
        assert stats.ranks[0].compute_fraction > 0.9
        # rank 1 spends its life blocked inside the recv (message time)
        assert stats.ranks[1].message_fraction > 0.9
