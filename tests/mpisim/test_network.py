"""Tests for the interconnect model."""

import pytest

from repro.mpisim.network import NetworkModel
from repro.noise.distributions import Constant


class TestDefaults:
    def test_link_latency_default(self):
        n = NetworkModel(latency=1000.0)
        assert n.link_latency(0, 1) == 1000.0

    def test_link_override_directed(self):
        n = NetworkModel(latency=1000.0, latency_by_link={(0, 1): 50.0})
        assert n.link_latency(0, 1) == 50.0
        assert n.link_latency(1, 0) == 1000.0

    def test_payload_time(self):
        n = NetworkModel(bandwidth=2.0)
        assert n.payload_time(1000) == 500.0
        assert n.payload_time(0) == 0.0

    def test_eager_threshold(self):
        n = NetworkModel(eager_threshold=100)
        assert n.is_eager(100)
        assert not n.is_eager(101)


class TestWireTime:
    def test_no_jitter(self, rng):
        n = NetworkModel(latency=100.0, bandwidth=4.0)
        assert n.wire_time(rng, 0, 1, 400) == pytest.approx(200.0)

    def test_with_jitter(self, rng):
        n = NetworkModel(latency=100.0, bandwidth=4.0, jitter=Constant(7.0))
        assert n.wire_time(rng, 0, 1, 0) == pytest.approx(107.0)

    def test_negative_jitter_clamped(self, rng):
        n = NetworkModel(latency=100.0, jitter=Constant(-50.0))
        assert n.wire_time(rng, 0, 1, 0) == pytest.approx(100.0)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel(send_overhead=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(eager_threshold=-1)
        with pytest.raises(ValueError):
            NetworkModel(latency_by_link={(0, 1): -5.0})


class TestVariants:
    def test_with_latency(self):
        n = NetworkModel(latency=100.0, bandwidth=3.0, latency_by_link={(0, 1): 5.0})
        n2 = n.with_latency(999.0)
        assert n2.latency == 999.0
        assert n2.bandwidth == 3.0
        assert n2.link_latency(0, 1) == 5.0
        assert n.latency == 100.0  # original untouched

    def test_with_jitter(self, rng):
        n = NetworkModel(latency=10.0).with_jitter(Constant(3.0))
        assert n.wire_time(rng, 0, 1, 0) == pytest.approx(13.0)
