"""High-level entry points for running simulated MPI programs.

Bundles the engine, the tracing hook, the network and noise
configuration, and per-rank local clocks into a single call::

    result = run(token_ring_program, nprocs=8, seed=1)
    result.finish_times      # per-rank completion (global virtual time)
    result.trace             # MemoryTrace / TraceSet of the run

``Machine`` captures the physical configuration (what the program runs
*on*); :mod:`repro.machines.presets` provides named instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.mpisim.clock import LocalClock, perfect_clocks, random_clocks
from repro.mpisim.engine import Engine, RankProgram
from repro.mpisim.network import NetworkModel
from repro.mpisim.tracing import FileCollector, MemoryCollector
from repro.noise.models import NO_NOISE, NoiseModel
from repro.trace.reader import MemoryTrace, TraceSet

__all__ = ["Machine", "RunResult", "run", "run_to_files"]


@dataclass(frozen=True)
class Machine:
    """A simulated platform: interconnect + per-node OS noise + clocks."""

    nprocs: int
    network: NetworkModel = field(default_factory=NetworkModel)
    noise: NoiseModel | tuple = NO_NOISE
    clocks: tuple = ()
    name: str = "machine"

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.clocks and len(self.clocks) != self.nprocs:
            raise ValueError(f"need {self.nprocs} clocks, got {len(self.clocks)}")
        if isinstance(self.noise, (list, tuple)) and len(self.noise) != self.nprocs:
            raise ValueError(f"need {self.nprocs} noise models, got {len(self.noise)}")

    def resolved_clocks(self) -> list[LocalClock]:
        return list(self.clocks) if self.clocks else perfect_clocks(self.nprocs)

    def with_skewed_clocks(self, seed: int = 0) -> "Machine":
        """Same machine with random per-rank clock skew/drift (§4.1)."""
        return Machine(
            nprocs=self.nprocs,
            network=self.network,
            noise=self.noise,
            clocks=tuple(random_clocks(self.nprocs, seed)),
            name=self.name,
        )


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    finish_times: list
    trace: MemoryTrace | TraceSet | None
    nprocs: int
    events_processed: int

    @property
    def makespan(self) -> float:
        """Completion time of the slowest rank (global virtual time)."""
        return max(self.finish_times)


def _make_engine(
    program: RankProgram,
    machine: Machine,
    seed,
    collector,
    call_overhead: float,
    max_events: int,
) -> Engine:
    noise = machine.noise
    if isinstance(noise, tuple):
        noise = list(noise)
    return Engine(
        program,
        machine.nprocs,
        network=machine.network,
        noise=noise,
        seed=seed,
        trace_hook=collector.hook if collector is not None else None,
        call_overhead=call_overhead,
        max_events=max_events,
    )


def run(
    program: RankProgram,
    nprocs: int | None = None,
    machine: Machine | None = None,
    seed: int | np.random.Generator | None = 0,
    trace: bool = True,
    program_name: str = "",
    call_overhead: float = 10.0,
    max_events: int = 50_000_000,
) -> RunResult:
    """Run ``program`` on ``machine`` (or a default quiet machine of
    ``nprocs`` ranks) collecting an in-memory trace."""
    if machine is None:
        if nprocs is None:
            raise ValueError("provide either nprocs or machine")
        machine = Machine(nprocs=nprocs)
    elif nprocs is not None and nprocs != machine.nprocs:
        raise ValueError(f"nprocs {nprocs} disagrees with machine.nprocs {machine.nprocs}")
    collector = (
        MemoryCollector(machine.nprocs, machine.resolved_clocks(), program=program_name)
        if trace
        else None
    )
    engine = _make_engine(program, machine, seed, collector, call_overhead, max_events)
    finish = engine.run()
    return RunResult(
        finish_times=finish,
        trace=collector.trace() if collector is not None else None,
        nprocs=machine.nprocs,
        events_processed=engine._events_processed,
    )


def run_to_files(
    program: RankProgram,
    directory: str | Path,
    stem: str,
    nprocs: int | None = None,
    machine: Machine | None = None,
    seed: int | np.random.Generator | None = 0,
    program_name: str = "",
    buffer_events: int = 4096,
    binary: bool = False,
    call_overhead: float = 10.0,
    max_events: int = 50_000_000,
) -> RunResult:
    """Run ``program`` writing buffered per-rank trace files (§4)."""
    if machine is None:
        if nprocs is None:
            raise ValueError("provide either nprocs or machine")
        machine = Machine(nprocs=nprocs)
    collector = FileCollector(
        directory,
        stem,
        machine.nprocs,
        clocks=machine.resolved_clocks(),
        program=program_name,
        buffer_events=buffer_events,
        binary=binary,
    )
    engine = _make_engine(program, machine, seed, collector, call_overhead, max_events)
    try:
        finish = engine.run()
    finally:
        collector.close()
    return RunResult(
        finish_times=finish,
        trace=TraceSet.open(directory, stem),
        nprocs=machine.nprocs,
        events_processed=engine._events_processed,
    )
