"""Tests for the Fig. 1 phase-timeline extraction and rendering."""

import pytest

from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace
from repro.viz.timeline import phases, render_ascii


def ev(seq, kind, t0, t1, rank=0):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1)


SAMPLE = [
    ev(0, EventKind.INIT, 0.0, 10.0),
    ev(1, EventKind.SEND, 100.0, 150.0),
    ev(2, EventKind.RECV, 300.0, 400.0),
    ev(3, EventKind.FINALIZE, 450.0, 460.0),
]


class TestPhases:
    def test_alternation(self):
        segs = phases(SAMPLE)
        kinds = [s.kind for s in segs]
        assert kinds == [
            "message",  # init
            "compute",  # 10..100
            "message",  # send
            "compute",  # 150..300
            "message",  # recv
            "compute",  # 400..450
            "message",  # finalize
        ]

    def test_labels_follow_fig1(self):
        segs = phases(SAMPLE)
        assert segs[0].label == "m0:init"
        assert segs[1].label == "c0"
        assert segs[2].label == "m1:send"
        assert segs[3].label == "c1"

    def test_durations(self):
        segs = phases(SAMPLE)
        compute_total = sum(s.duration for s in segs if s.kind == "compute")
        message_total = sum(s.duration for s in segs if s.kind == "message")
        assert compute_total == pytest.approx(90.0 + 150.0 + 50.0)
        assert message_total == pytest.approx(10.0 + 50.0 + 100.0 + 10.0)

    def test_min_compute_suppresses_slivers(self):
        events = [
            ev(0, EventKind.SEND, 0.0, 10.0),
            ev(1, EventKind.RECV, 11.0, 20.0),  # 1-cycle gap
        ]
        assert len(phases(events, min_compute=5.0)) == 2
        assert len(phases(events, min_compute=0.0)) == 3

    def test_empty(self):
        assert phases([]) == []


class TestRenderAscii:
    def test_one_lane_per_rank(self, ring_trace):
        art = render_ascii(ring_trace, width=60)
        lines = art.splitlines()
        assert len(lines) == ring_trace.nprocs + 1  # lanes + legend
        for rank in range(ring_trace.nprocs):
            assert lines[rank].startswith(f"r{rank:>3} |")

    def test_contains_both_phase_chars(self, ring_trace):
        art = render_ascii(ring_trace, width=80)
        assert "=" in art and "#" in art

    def test_rank_selection(self, ring_trace):
        art = render_ascii(ring_trace, ranks=[2], width=40)
        assert art.splitlines()[0].startswith("r  2")
        assert len(art.splitlines()) == 2

    def test_width_validated(self, ring_trace):
        with pytest.raises(ValueError):
            render_ascii(ring_trace, width=5)

    def test_empty_rank_handled(self):
        trace = MemoryTrace([[], [ev(0, EventKind.INIT, 0.0, 1.0, rank=1)]])
        art = render_ascii(trace, width=30)
        assert "(no events)" in art


class TestRenderDelayTimeline:
    @staticmethod
    def _points():
        from repro.core import PerturbationSpec, build_graph, delay_timeline, propagate
        from repro.mpisim import run as simrun
        from repro.noise import Constant, MachineSignature
        from repro.apps import TokenRingParams, token_ring

        trace = simrun(token_ring(TokenRingParams(traversals=2)), nprocs=3, seed=0).trace
        build = build_graph(trace)
        res = propagate(
            build, PerturbationSpec(MachineSignature(os_noise=Constant(100.0)), seed=0)
        )
        return delay_timeline(build, res, 1)

    def test_renders_rows_and_totals(self):
        from repro.viz import render_delay_timeline

        points = self._points()
        art = render_delay_timeline(points)
        assert f"{points[-1].delay:,.0f}" in art
        assert "RECV" in art or "SEND" in art

    def test_collapses_flat_stretches(self):
        from repro.viz import render_delay_timeline

        points = self._points()
        art = render_delay_timeline(points, min_increment=1e12)
        assert "no delay growth" in art

    def test_empty_and_validation(self):
        from repro.viz import render_delay_timeline

        assert render_delay_timeline([]) == "(no events)"
        import pytest

        with pytest.raises(ValueError):
            render_delay_timeline(self._points(), width=3)
