"""POP-metrics report assembly: JSON payload, text rendering, gating.

The JSON report (schema ``repro-pop-metrics/1``) is the CLI artifact
the ``metrics-smoke`` CI job validates and uploads; the text rendering
follows the repo's reporter conventions (plain rows, no color).  When
an observability session is active, :func:`publish_obs_metrics` mirrors
the headline numbers into the :mod:`repro.obs` metrics registry so the
existing ``--metrics-out`` / ``--profile`` exporters carry them.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.metrics.pop import PopMetrics
from repro.metrics.timeline import PopTimeline

__all__ = [
    "SCHEMA",
    "build_report",
    "gate_report",
    "publish_obs_metrics",
    "render_text",
]

SCHEMA = "repro-pop-metrics/1"

#: metric keys accepted by ``--fail-below`` (report key they gate on)
GATEABLE = {
    "pe": "parallel_efficiency",
    "lb": "load_balance",
    "comm_eff": "comm_efficiency",
    "ser_eff": "serialization_efficiency",
    "transfer_eff": "transfer_efficiency",
    "window_pe": "window_pe_min",
    "window_lb": "window_lb_min",
    "window_comm_eff": "window_comm_eff_min",
}


def build_report(
    pop: PopMetrics,
    timeline: PopTimeline | None = None,
    *,
    source: str = "",
    program: str = "",
) -> dict[str, Any]:
    """The schema-``repro-pop-metrics/1`` JSON payload."""
    report: dict[str, Any] = {"schema": SCHEMA, "source": source, "program": program}
    report.update(pop.to_dict())
    if timeline is not None:
        wins = timeline.window_dicts()
        report["windows"] = wins
        if wins:
            report["window_pe_min"] = min(w["parallel_efficiency"] for w in wins)
            report["window_lb_min"] = min(w["load_balance"] for w in wins)
            report["window_comm_eff_min"] = min(w["comm_efficiency"] for w in wins)
            report["worst_window"] = timeline.worst_window()
    else:
        report["windows"] = []
    return report


def _bar(value: float, width: int = 24) -> str:
    n = int(round(max(0.0, min(value, 1.0)) * width))
    return "#" * n + "." * (width - n)


def render_text(report: dict[str, Any]) -> str:
    """Human-readable rendering of a report dict."""
    lines = [
        f"POP efficiency metrics — program={report.get('program') or '?'} "
        f"nprocs={report['nprocs']} runtime={report['runtime']:,.0f} cy"
    ]
    rows = [
        ("parallel efficiency (PE)", report["parallel_efficiency"]),
        ("load balance        (LB)", report["load_balance"]),
        ("communication eff (CommE)", report["comm_efficiency"]),
    ]
    if "serialization_efficiency" in report:
        rows += [
            ("serialization eff (SerE)", report["serialization_efficiency"]),
            ("transfer eff        (TE)", report["transfer_efficiency"]),
        ]
    for label, val in rows:
        lines.append(f"  {label:<26} {val:6.3f}  {_bar(val)}")
    if "ideal_runtime" in report:
        lines.append(f"  ideal-network runtime      {report['ideal_runtime']:,.0f} cy")

    lines.append("per-rank (own-clock cycles):")
    lines.append(f"  {'rank':>4} {'events':>7} {'useful':>14} {'comm':>14} {'useful%':>8}")
    for r in range(report["nprocs"]):
        runtime = report["rank_runtime"][r]
        useful = report["rank_useful"][r]
        pct = 100.0 * useful / runtime if runtime > 0 else 0.0
        lines.append(
            f"  {r:>4} {report['rank_events'][r]:>7} {useful:>14,.0f} "
            f"{report['rank_comm'][r]:>14,.0f} {pct:>7.1f}%"
        )

    windows = report.get("windows", [])
    if windows:
        lines.append(f"timeline ({len(windows)} windows, PE per window):")
        for w in windows:
            marker = "  <- worst" if w["index"] == report.get("worst_window") else ""
            lines.append(
                f"  [{w['t_start']:>12,.0f}, {w['t_end']:>12,.0f}) "
                f"PE {w['parallel_efficiency']:5.3f} LB {w['load_balance']:5.3f} "
                f"CommE {w['comm_efficiency']:5.3f} {_bar(w['parallel_efficiency'])}{marker}"
            )
    return "\n".join(lines)


def publish_obs_metrics(report: dict[str, Any]) -> None:
    """Mirror headline metrics into the active obs session (no-op when
    observability is disabled)."""
    if not obs.enabled():
        return
    for key in (
        "parallel_efficiency",
        "load_balance",
        "comm_efficiency",
        "serialization_efficiency",
        "transfer_efficiency",
        "window_pe_min",
    ):
        if key in report and report[key] is not None:
            obs.gauge(f"pop.{key}", float(report[key]))
    obs.gauge("pop.windows", float(len(report.get("windows", []))))


def gate_report(report: dict[str, Any], thresholds: dict[str, float]) -> list[str]:
    """Check ``--fail-below`` thresholds; returns violation messages.

    Keys are the short names in :data:`GATEABLE`.  A threshold on a
    metric the report does not carry (e.g. ``ser_eff`` without
    ``--ideal``) is itself a violation, so gates never silently pass.
    """
    violations = []
    for short, value in thresholds.items():
        key = GATEABLE.get(short)
        if key is None:
            raise ValueError(
                f"unknown metric {short!r}; gateable metrics: {', '.join(sorted(GATEABLE))}"
            )
        actual = report.get(key)
        if actual is None:
            violations.append(f"{short}: metric {key!r} not present in this report")
        elif actual < value:
            violations.append(f"{short}: {actual:.4f} < required {value:.4f}")
    return violations
