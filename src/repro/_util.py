"""Shared small utilities used across the :mod:`repro` packages.

Nothing in this module is specific to the paper; it collects the
seed-handling, validation and identifier helpers that every subsystem
needs so that they behave identically everywhere.
"""

from __future__ import annotations

import contextlib
import itertools
import math
import os
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "as_rng",
    "spawn_rng",
    "atomic_write_bytes",
    "atomic_write_text",
    "check_nonnegative",
    "check_positive",
    "check_rank",
    "ilog2_ceil",
    "pairwise",
    "chunked",
    "format_cycles",
]


# Temp-name uniquifier for the atomic writers.  The pid alone is not
# enough once one process has concurrent writers (a multi-threaded
# daemon): two threads sharing a temp name could interleave write →
# replace and lose one write or raise on a vanished temp file.  next()
# on an itertools.count is atomic under the GIL, so pid + sequence
# gives every in-flight write its own temp file.
_TMP_SEQ = itertools.count()


def _tmp_name(path: Path) -> Path:
    return path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQ)}")


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Readers never observe a truncated file: a crash mid-write leaves
    either the previous version (or nothing, for a new file) plus a
    stray ``*.tmp.<pid>.<seq>`` — never a half-written artifact.  Every
    artifact writer in the package (obs exporters, benchmark results,
    checkpoint shards, signatures) goes through this.  Concurrent
    writers to the same path (threads or processes) are safe:
    last-writer-wins, and a reader sees one complete version or none.
    """
    path = Path(path)
    tmp = _tmp_name(path)
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (temp file + ``os.replace``).

    Used for artifacts that are not text — pickled compiled plans in the
    checkpoint store, most notably.
    """
    path = Path(path)
    tmp = _tmp_name(path)
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    return path


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS entropy).  Centralising this keeps seeding
    semantics uniform across the simulator, the perturbation engine and
    the microbenchmarks.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each simulated rank / each edge-class sampler its own
    stream so that adding ranks does not shift the random numbers seen
    by existing ranks.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def check_nonnegative(name: str, value: float) -> float:
    """Validate ``value >= 0`` (and finite), returning it."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` (and finite), returning it."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_rank(rank: int, nprocs: int) -> int:
    """Validate a rank index against a communicator size."""
    if not 0 <= rank < nprocs:
        raise ValueError(f"rank {rank} out of range for {nprocs} processes")
    return rank


def ilog2_ceil(n: int) -> int:
    """Smallest ``k`` with ``2**k >= n`` (``n >= 1``).

    The paper's approximate collective model samples noise
    ``ceil(log2 p)`` times per rank; this is that exponent.
    """
    if n < 1:
        raise ValueError(f"ilog2_ceil requires n >= 1, got {n}")
    return (n - 1).bit_length()


def pairwise(seq: Iterable) -> Iterator[tuple]:
    """Yield consecutive pairs ``(s0, s1), (s1, s2), ...``."""
    a, b = itertools.tee(seq)
    next(b, None)
    return zip(a, b)


def chunked(seq: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive slices of ``seq`` of at most ``size`` items."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


def format_cycles(cycles: float) -> str:
    """Human-readable cycle count (``1.25e6`` -> ``'1.25 Mcy'``)."""
    if cycles == 0:
        return "0 cy"
    for scale, unit in ((1e9, "Gcy"), (1e6, "Mcy"), (1e3, "kcy")):
        if abs(cycles) >= scale:
            return f"{cycles / scale:.2f} {unit}"
    return f"{cycles:.0f} cy"
