"""CLI tests: ``repro-diagnose``, the ``--diagnose`` tail of
``repro-analyze``, and the ``python -m repro.testing.slowrank``
injection tool — the exact pipeline the CI ``diagnose`` job runs."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main_analyze, main_diagnose, main_trace
from repro.testing import slowrank

SCHEMA = Path(__file__).parent.parent / "lint" / "sarif-2.1.0-subset.schema.json"


@pytest.fixture(scope="module")
def clean_traces(tmp_path_factory):
    d = tmp_path_factory.mktemp("clean")
    rc = main_trace(
        ["--app", "token_ring", "--nprocs", "4", "--out", str(d),
         "--stem", "ring", "--param", "traversals=2", "--seed", "1"]
    )
    assert rc == 0
    return d


@pytest.fixture(scope="module")
def slow_traces(clean_traces, tmp_path_factory):
    """The CI faulty-rank scenario: rank 1 slowed 25x via the module CLI."""
    d = tmp_path_factory.mktemp("slow")
    rc = slowrank.main(
        ["--traces", str(clean_traces), "--stem", "ring",
         "--rank", "1", "--factor", "25", "--out", str(d)]
    )
    assert rc == 0
    return d


class TestReproDiagnose:
    def test_list_rules(self, capsys):
        assert main_diagnose(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert out.count("MPG2") == 6
        assert "[anomalous-rank]" in out

    def test_clean_run_exits_zero_even_on_warning_gate(self, clean_traces, capsys):
        rc = main_diagnose(
            ["--traces", str(clean_traces), "--stem", "ring", "--fail-on", "warning"]
        )
        assert rc == 0
        assert "0 warning(s)" in capsys.readouterr().out

    def test_slow_rank_fails_warning_gate_naming_culprit(self, slow_traces, capsys):
        rc = main_diagnose(
            ["--traces", str(slow_traces), "--stem", "ring", "--fail-on", "warning"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "MPG210" in out
        assert "rank 1" in out

    def test_fail_on_never_always_exits_zero(self, slow_traces):
        rc = main_diagnose(
            ["--traces", str(slow_traces), "--stem", "ring", "--fail-on", "never"]
        )
        assert rc == 0

    def test_json_document(self, slow_traces, tmp_path):
        out = tmp_path / "report.json"
        rc = main_diagnose(
            ["--traces", str(slow_traces), "--stem", "ring",
             "--format", "json", "--out", str(out), "--fail-on", "never"]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-diagnosis-report/1"
        assert doc["diagnosis"]["anomalies"]["anomalies"][0]["rank"] == 1

    def test_sarif_validates_and_locates_trace_files(self, slow_traces, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        out = tmp_path / "report.sarif"
        rc = main_diagnose(
            ["--traces", str(slow_traces), "--stem", "ring",
             "--format", "sarif", "--out", str(out), "--fail-on", "never"]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        jsonschema.validate(doc, json.loads(SCHEMA.read_text()))
        results = doc["runs"][0]["results"]
        assert {"MPG200", "MPG210"} <= {r["ruleId"] for r in results}
        hit = next(r for r in results if r["ruleId"] == "MPG210")
        assert hit["level"] == "warning"
        uri = hit["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("ring.rank0001.trace.jsonl")

    def test_sarif_bit_identical_across_engines(self, slow_traces, tmp_path):
        """The acceptance criterion: the SARIF document is byte-equal
        whichever longest-path engine produced it."""
        docs = []
        for engine in ("compiled", "incore", "graph"):
            out = tmp_path / f"{engine}.sarif"
            rc = main_diagnose(
                ["--traces", str(slow_traces), "--stem", "ring", "--engine", engine,
                 "--format", "sarif", "--out", str(out), "--fail-on", "never"]
            )
            assert rc == 0
            docs.append(out.read_bytes())
        assert docs[0] == docs[1] == docs[2]

    def test_threshold_flags_reach_config(self, clean_traces, capsys):
        # an absurdly low imbalance bar makes MPG211 fire on any run
        rc = main_diagnose(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--imbalance-ratio", "1.0", "--fail-on", "never"]
        )
        assert rc == 0
        assert "MPG211" in capsys.readouterr().out

    def test_disable_rule(self, clean_traces, capsys):
        rc = main_diagnose(
            ["--traces", str(clean_traces), "--stem", "ring", "--disable", "MPG202"]
        )
        assert rc == 0
        assert "MPG202" not in capsys.readouterr().out

    def test_missing_traces_is_usage_error(self):
        with pytest.raises(SystemExit):
            main_diagnose([])


class TestAnalyzeDiagnoseFlag:
    def test_analyze_emits_diagnosis(self, clean_traces, tmp_path, capsys):
        out = tmp_path / "diag.json"
        rc = main_analyze(
            ["--traces", str(clean_traces), "--stem", "ring", "--lint", "off",
             "--measure", "quiet", "--replicates", "2",
             "--diagnose", "--diagnose-format", "json", "--diagnose-out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-diagnosis-report/1"

    def test_streaming_engine_refused(self, clean_traces):
        with pytest.raises(SystemExit, match="graph engine"):
            main_analyze(
                ["--traces", str(clean_traces), "--stem", "ring",
                 "--measure", "quiet", "--engine", "streaming", "--diagnose"]
            )
