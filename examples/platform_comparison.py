#!/usr/bin/env python
"""Platform comparison: "which machine should we buy for this app?"

The paper's closing motivation (§7): "guide users and system
procurements to determine the best platform for applications of
interest."  Workflow:

1. trace the applications once, on the quiet reference cluster;
2. measure each *candidate* platform's signature with the
   microbenchmark suite (§5) — FTQ, ping-pong, bandwidth, Mraz;
3. replay every application trace against every candidate signature and
   compare the predicted runtime increases.

No application is ever run on the candidate machines — only the
microbenchmarks are.
"""

from repro.apps import (
    AllreduceIterParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    stencil1d,
    token_ring,
)
from repro.core import PerturbationSpec, build_graph, propagate, runtime_impact
from repro.machines import asciq_like, noisy_cluster, quiet_cluster, wan_grid
from repro.microbench import measure_machine
from repro.mpisim import run

P = 16

APPS = {
    "token_ring": token_ring(TokenRingParams(traversals=5)),
    "stencil1d": stencil1d(StencilParams(iterations=8)),
    "allreduce_iter": allreduce_iter(AllreduceIterParams(iterations=10)),
}

CANDIDATES = {
    "noisy-commodity": noisy_cluster(2, skewed_clocks=False),
    "asciq-like": asciq_like(2, skewed_clocks=False),
    "wan-grid": wan_grid(2, skewed_clocks=False),
}


def main() -> None:
    print(f"1. tracing {len(APPS)} applications on the quiet reference cluster (p={P})")
    builds = {}
    for name, prog in APPS.items():
        trace = run(prog, machine=quiet_cluster(P, seed=0), seed=1).trace
        builds[name] = build_graph(trace)
        print(f"   {name:>15}: {builds[name].graph}")

    print("\n2. measuring candidate platforms (microbenchmarks only):")
    signatures = {}
    for name, machine in CANDIDATES.items():
        report = measure_machine(machine, seed=0)
        signatures[name] = report.to_signature()
        print(f"   {name:>15}: {report.summary()}")

    print("\n3. predicted mean slowdown of each app on each platform:")
    header = f"{'app':>15} " + " ".join(f"{c:>16}" for c in CANDIDATES)
    print(header)
    best = {}
    for app, build in builds.items():
        cells = []
        for cand, sig in signatures.items():
            res = propagate(build, PerturbationSpec(sig, seed=0))
            impact = runtime_impact(build, res)
            slowdown = impact.max_slowdown
            cells.append(f"{slowdown:>15.2%} ")
            best.setdefault(app, []).append((slowdown, cand))
        print(f"{app:>15} " + " ".join(cells))

    print("\nrecommendation (lowest predicted slowdown per app):")
    for app, options in best.items():
        slowdown, cand = min(options)
        print(f"   {app:>15}: {cand} ({slowdown:.2%})")


if __name__ == "__main__":
    main()
