"""End-to-end pipeline tests: simulate → trace files → validate → graph →
perturb → analyze, through the public API exactly as a user would."""

import pytest

from repro.apps import (
    AllreduceIterParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    stencil1d,
    token_ring,
)
from repro.core import (
    BuildConfig,
    PerturbationSpec,
    StreamingTraversal,
    absorption_map,
    build_graph,
    check_correctness,
    critical_path,
    propagate,
    runtime_impact,
    sweep_scales,
)
from repro.machines import noisy_cluster, quiet_cluster
from repro.microbench import measure_machine
from repro.mpisim import run, run_to_files
from repro.noise import Constant, MachineSignature
from repro.trace import TraceSet, validate_traces

from tests.conftest import assert_engines_agree


@pytest.mark.parametrize("binary", [False, True])
def test_full_file_based_pipeline(tmp_path, binary):
    """The complete paper workflow over on-disk traces."""
    machine = quiet_cluster(4, seed=0)
    run_to_files(
        token_ring(TokenRingParams(traversals=3)),
        tmp_path,
        "ring",
        machine=machine,
        seed=1,
        binary=binary,
        program_name="token_ring",
    )
    traces = TraceSet.open(tmp_path, "ring")
    assert validate_traces(traces).ok

    sig = MachineSignature(os_noise=Constant(200.0), latency=Constant(100.0))
    spec = PerturbationSpec(sig, seed=0)
    build = build_graph(traces)
    res = propagate(build, spec)
    assert check_correctness(build, res).ok
    assert res.max_delay > 0

    impact = runtime_impact(build, res)
    assert impact.max_slowdown > 0
    cp = critical_path(build, res)
    assert cp.total_delay == pytest.approx(res.max_delay)
    am = absorption_map(build, res)
    assert 0.0 <= am.overall_ratio() <= 1.0

    streaming = StreamingTraversal(spec).run(traces)
    for a, b in zip(res.final_delay, streaming.final_delay):
        assert a == pytest.approx(b)


def test_microbench_to_analysis_loop(tmp_path):
    """Measure a noisy preset, analyze a quiet-machine trace with its
    signature — the §5/§6 'how would this app behave over there' flow."""
    quiet = quiet_cluster(4, seed=0)
    trace = run(
        allreduce_iter(AllreduceIterParams(iterations=5)), machine=quiet, seed=2
    ).trace
    noisy = noisy_cluster(2, seed=0)
    report = measure_machine(noisy, seed=0, ftq_quanta=512, pingpong_iterations=64,
                             bandwidth_iterations=8, mraz_messages=64)
    sig = report.to_signature()
    sig_file = tmp_path / "noisy.json"
    sig.save(sig_file)
    spec = PerturbationSpec(MachineSignature.load(sig_file), seed=1)
    res = assert_engines_agree(trace, spec)
    assert res.max_delay > 0


def test_skewed_clocks_do_not_change_predictions():
    """§4.1 in action: the same run traced through wildly skewed clocks
    must yield identical *delays* (only per-rank intervals matter)."""
    prog = stencil1d(StencilParams(iterations=3))
    base = quiet_cluster(5, skewed_clocks=False)
    skewed = quiet_cluster(5, seed=9)  # random offsets up to 1e9 cycles
    sig = MachineSignature(os_noise=Constant(100.0), latency=Constant(40.0))
    spec = PerturbationSpec(sig, seed=0)

    trace_a = run(prog, machine=base, seed=4).trace
    trace_b = run(prog, machine=skewed, seed=4).trace
    res_a = propagate(build_graph(trace_a), spec)
    res_b = propagate(build_graph(trace_b), spec)
    for a, b in zip(res_a.final_delay, res_b.final_delay):
        assert a == pytest.approx(b, abs=1e-4)


def test_collective_mode_changes_prediction_not_validity(ring_trace):
    sig = MachineSignature(os_noise=Constant(100.0), latency=Constant(40.0))
    spec = PerturbationSpec(sig, seed=0)
    hub = propagate(build_graph(ring_trace), spec)
    bfly_build = build_graph(ring_trace, BuildConfig(collective_mode="butterfly"))
    bfly = propagate(bfly_build, spec)
    assert check_correctness(bfly_build, bfly).ok
    # Both models produce positive, same-order delays (ABL1 measures the gap).
    assert hub.max_delay > 0 and bfly.max_delay > 0
    ratio = hub.max_delay / bfly.max_delay
    assert 0.2 < ratio < 5.0


def test_sweep_over_file_traces(tmp_path):
    run_to_files(
        token_ring(TokenRingParams(traversals=2)),
        tmp_path,
        "ring",
        machine=quiet_cluster(3, seed=0),
        seed=0,
    )
    traces = TraceSet.open(tmp_path, "ring")
    sig = MachineSignature(latency=Constant(100.0))
    sweep = sweep_scales(traces, PerturbationSpec(sig, seed=0), [0.0, 1.0, 2.0])
    assert sweep.max_delays()[0] == 0.0
    assert sweep.max_delays()[2] == pytest.approx(2 * sweep.max_delays()[1])
