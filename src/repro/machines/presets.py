"""Preset simulated platforms.

Named machine configurations standing in for the cluster classes the
paper discusses: a quiet lightweight-kernel cluster (the bproc systems
of Sottile & Minnich 2004), a commodity full-OS cluster with daemons,
and an ASCI-Q-like machine whose heavyweight periodic daemons caused
the famous missing performance (Petrini et al. 2003).  All units are
virtual cycles and bytes/cycle.
"""

from __future__ import annotations

from repro.mpisim.network import NetworkModel
from repro.mpisim.runtime import Machine
from repro.noise.distributions import Exponential, LogNormal, Pareto, Uniform
from repro.noise.models import CompositeNoise, NO_NOISE, PeriodicDaemon, RandomPreemption

__all__ = ["quiet_cluster", "noisy_cluster", "asciq_like", "wan_grid", "PRESETS"]


def _network(latency: float, bandwidth: float, jitter=None) -> NetworkModel:
    return NetworkModel(
        latency=latency,
        bandwidth=bandwidth,
        send_overhead=200.0,
        recv_overhead=200.0,
        eager_threshold=8192,
        jitter=jitter if jitter is not None else Uniform(0.0, 0.0),
    )


def quiet_cluster(nprocs: int, skewed_clocks: bool = True, seed: int = 0) -> Machine:
    """Lightweight-kernel cluster: near-zero OS noise, tight network."""
    m = Machine(
        nprocs=nprocs,
        network=_network(latency=800.0, bandwidth=4.0),
        noise=NO_NOISE,
        name="quiet-bproc",
    )
    return m.with_skewed_clocks(seed) if skewed_clocks else m


def noisy_cluster(nprocs: int, skewed_clocks: bool = True, seed: int = 0) -> Machine:
    """Commodity full-OS cluster: random preemptions + cron-ish daemon."""
    noise = CompositeNoise(
        [
            RandomPreemption(rate=2e-5, cost=Exponential(400.0)),
            PeriodicDaemon(period=1_000_000.0, cost=LogNormal(7.0, 0.5)),
        ]
    )
    m = Machine(
        nprocs=nprocs,
        network=_network(latency=1500.0, bandwidth=2.0, jitter=Exponential(60.0)),
        noise=noise,
        name="noisy-commodity",
    )
    return m.with_skewed_clocks(seed) if skewed_clocks else m


def asciq_like(nprocs: int, skewed_clocks: bool = True, seed: int = 0) -> Machine:
    """Heavy periodic daemons with heavy-tailed costs, per-rank phases.

    The per-rank phase offsets matter: unsynchronized daemons guarantee
    that *some* rank is always being hit, which is exactly why
    collectives suffered on ASCI Q.
    """
    per_rank = tuple(
        CompositeNoise(
            [
                PeriodicDaemon(
                    period=500_000.0,
                    cost=Pareto(alpha=1.8, minimum=2_000.0),
                    phase=(r * 500_000.0 / max(nprocs, 1)) % 500_000.0,
                ),
                RandomPreemption(rate=5e-5, cost=Exponential(800.0)),
            ]
        )
        for r in range(nprocs)
    )
    m = Machine(
        nprocs=nprocs,
        network=_network(latency=1200.0, bandwidth=3.0, jitter=Exponential(100.0)),
        noise=per_rank,
        name="asciq-like",
    )
    return m.with_skewed_clocks(seed) if skewed_clocks else m


def wan_grid(nprocs: int, skewed_clocks: bool = True, seed: int = 0) -> Machine:
    """Grid-style machine: quiet nodes, slow jittery wide-area links —
    the Dimemas-for-grids scenario (Badia et al. 2003)."""
    m = Machine(
        nprocs=nprocs,
        network=_network(latency=50_000.0, bandwidth=0.25, jitter=LogNormal(8.0, 1.0)),
        noise=RandomPreemption(rate=1e-6, cost=Exponential(200.0)),
        name="wan-grid",
    )
    return m.with_skewed_clocks(seed) if skewed_clocks else m


PRESETS = {
    "quiet": quiet_cluster,
    "noisy": noisy_cluster,
    "asciq": asciq_like,
    "wan": wan_grid,
}
