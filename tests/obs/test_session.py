"""Span nesting, timing monotonicity, and the drain/absorb transfer."""

import contextlib

from repro.obs import Session


def test_span_nesting_depth_and_parents():
    s = Session("t")
    with s.span("outer") as outer:
        with s.span("mid"), s.span("inner"):
            pass
        with s.span("mid2"):
            pass
    assert outer.record.t_end is not None

    by_name = {r.name: r for r in s.spans}
    assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
    assert by_name["mid"].depth == 1 and s.spans[by_name["mid"].parent].name == "outer"
    assert by_name["inner"].depth == 2 and s.spans[by_name["inner"].parent].name == "mid"
    assert by_name["mid2"].depth == 1 and s.spans[by_name["mid2"].parent].name == "outer"


def test_span_timing_monotonic():
    s = Session("t")
    with s.span("outer"), s.span("inner"):
        sum(range(1000))
    outer, inner = s.spans[0], s.spans[1]
    for r in (outer, inner):
        assert r.t_end >= r.t_start
        assert r.cpu_end >= r.cpu_start
        assert r.duration >= 0.0
    # A child span is contained in its parent's wall interval.
    assert outer.t_start <= inner.t_start
    assert inner.t_end <= outer.t_end


def test_span_counters_and_error_flag():
    s = Session("t")
    with s.span("work", mode="additive") as h:
        h.add("items", 3)
        h.add("items", 2)
    assert s.spans[0].counters == {"items": 5}
    assert s.spans[0].attrs == {"mode": "additive"}

    with contextlib.suppress(RuntimeError), s.span("failing"):
        raise RuntimeError("boom")
    assert s.spans[1].attrs.get("error") is True
    assert s.spans[1].t_end is not None


def test_current_span_and_close_open():
    s = Session("t")
    assert s.current_span() is None
    h = s.span("open")
    h.__enter__()
    assert s.current_span() is h.record
    s.close_open_spans()
    assert s.current_span() is None
    assert s.spans[0].t_end is not None


def test_drain_ships_only_completed_once():
    s = Session("t")
    with s.span("done"):
        pass
    h = s.span("open")
    h.__enter__()

    blob = s.drain()
    assert [d["name"] for d in blob["spans"]] == ["done"]
    assert blob["pid"] == s.pid
    # A second drain must not re-ship the same span.
    assert s.drain()["spans"] == []
    h.__exit__(None, None, None)


def test_absorb_rebases_parents_and_tags_workers():
    parent = Session("parent")
    with parent.span("local"):
        pass

    worker = Session("worker")
    worker.pid = parent.pid + 1  # simulate a separate process
    with worker.span("chunk"), worker.span("replicate"):
        pass
    worker.metrics.counter("mc.replicates").inc(4)
    for rec in worker.spans:
        rec.pid = worker.pid

    parent.absorb(worker.drain())
    parent.absorb(None)  # no-op blob

    assert parent.workers == [worker.pid]
    names = [r.name for r in parent.spans]
    assert names == ["local", "chunk", "replicate"]
    replicate = parent.spans[2]
    assert parent.spans[replicate.parent].name == "chunk"
    assert parent.metrics.counter("mc.replicates").value == 4
    assert "span(s)" in parent.summary()
