"""Tests for the PMPI-style trace collectors."""

import pytest

from repro.mpisim.clock import LocalClock
from repro.mpisim.tracing import FileCollector, MemoryCollector
from repro.trace.events import EventKind
from repro.trace.reader import TraceSet


class TestMemoryCollector:
    def test_sequence_numbers_dense_per_rank(self):
        c = MemoryCollector(2)
        c.hook(0, EventKind.INIT, 0.0, 1.0)
        c.hook(1, EventKind.INIT, 0.0, 1.0)
        c.hook(0, EventKind.SEND, 1.0, 2.0, peer=1)
        trace = c.trace()
        assert [e.seq for e in trace.events_of(0)] == [0, 1]
        assert [e.seq for e in trace.events_of(1)] == [0]

    def test_clock_conversion(self):
        clocks = [LocalClock(offset=1000.0, drift=0.0), LocalClock(offset=0.0, drift=1.0)]
        c = MemoryCollector(2, clocks=clocks)
        c.hook(0, EventKind.INIT, 10.0, 20.0)
        c.hook(1, EventKind.INIT, 10.0, 20.0)
        trace = c.trace()
        e0 = next(iter(trace.events_of(0)))
        e1 = next(iter(trace.events_of(1)))
        assert (e0.t_start, e0.t_end) == (1010.0, 1020.0)
        assert (e1.t_start, e1.t_end) == (20.0, 40.0)

    def test_clock_count_validated(self):
        with pytest.raises(ValueError):
            MemoryCollector(3, clocks=[LocalClock()])


class TestPatching:
    def test_patch_fills_resolved_fields(self):
        c = MemoryCollector(1)
        token = c.hook(0, EventKind.IRECV, 0.0, 1.0, peer=-1, tag=-1, req=0, patchable=True)
        # Held back until patched: nothing visible yet.
        assert c.records[0] == []
        c.patch(token, peer=3, tag=7, nbytes=99)
        (rec,) = c.records[0]
        assert (rec.peer, rec.tag, rec.nbytes) == (3, 7, 99)

    def test_order_preserved_across_patch(self):
        c = MemoryCollector(1)
        token = c.hook(0, EventKind.IRECV, 0.0, 1.0, peer=-1, req=0, patchable=True)
        c.hook(0, EventKind.WAIT, 1.0, 2.0, reqs=(0,), completed=(0,))
        assert c.records[0] == []  # the WAIT is queued behind the IRECV
        c.patch(token, peer=2, tag=0, nbytes=8)
        assert [e.kind for e in c.records[0]] == [EventKind.IRECV, EventKind.WAIT]
        assert [e.seq for e in c.records[0]] == [0, 1]

    def test_finish_flushes_unpatched(self):
        c = MemoryCollector(1)
        c.hook(0, EventKind.IRECV, 0.0, 1.0, peer=-1, req=0, patchable=True)
        c.finish()
        (rec,) = c.records[0]
        assert rec.peer == -1  # never resolved

    def test_patch_wrong_token_rejected(self):
        c = MemoryCollector(1)
        c.hook(0, EventKind.SEND, 0.0, 1.0, peer=1)
        with pytest.raises(ValueError):
            c.patch((0, 0), peer=1, tag=0, nbytes=0)

    def test_other_rank_unaffected_by_held_record(self):
        c = MemoryCollector(2)
        c.hook(0, EventKind.IRECV, 0.0, 1.0, peer=-1, req=0, patchable=True)
        c.hook(1, EventKind.SEND, 0.0, 1.0, peer=0)
        assert len(c.records[1]) == 1  # rank 1 flushes independently


class TestFileCollector:
    def test_round_trip(self, tmp_path):
        c = FileCollector(tmp_path, "t", 2, program="prog")
        c.hook(0, EventKind.INIT, 0.0, 1.0)
        c.hook(1, EventKind.INIT, 0.0, 1.0)
        c.hook(0, EventKind.SEND, 1.0, 2.0, peer=1, tag=3, nbytes=64)
        c.hook(1, EventKind.RECV, 1.0, 3.0, peer=0, tag=3, nbytes=64)
        c.hook(0, EventKind.FINALIZE, 2.0, 3.0)
        c.hook(1, EventKind.FINALIZE, 3.0, 4.0)
        trace = c.trace()
        assert isinstance(trace, TraceSet)
        assert trace.nprocs == 2
        events = list(trace.events_of(0))
        assert [e.kind for e in events] == [EventKind.INIT, EventKind.SEND, EventKind.FINALIZE]
        assert trace.meta(0).program == "prog"

    def test_clock_params_in_meta(self, tmp_path):
        clocks = [LocalClock(offset=7.0, drift=1e-5)]
        c = FileCollector(tmp_path, "c", 1, clocks=clocks)
        c.hook(0, EventKind.INIT, 0.0, 1.0)
        trace = c.trace()
        assert trace.meta(0).clock_offset == 7.0
        assert trace.meta(0).clock_drift == 1e-5
