"""Validation tests for the simulated-MPI op descriptors."""

import pytest

from repro.mpisim.api import (
    ANY_SOURCE,
    ANY_TAG,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Scatter,
    Send,
    Sendrecv,
    Test as MpiTest,
    Wait,
    Waitall,
    Waitsome,
    COLLECTIVE_OPS,
)


class TestValidation:
    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1.0)
        Compute(0.0)  # zero ok

    @pytest.mark.parametrize("op_cls", [Send, Isend])
    def test_send_rejects_bad_values(self, op_cls):
        with pytest.raises(ValueError):
            op_cls(dest=1, nbytes=-1)
        with pytest.raises(ValueError):
            op_cls(dest=1, tag=-2)
        op_cls(dest=1, nbytes=0, tag=0)

    @pytest.mark.parametrize("op_cls", [Recv, Irecv])
    def test_recv_wildcards_ok(self, op_cls):
        op = op_cls()
        assert op.source == ANY_SOURCE
        assert op.tag == ANY_TAG
        with pytest.raises(ValueError):
            op_cls(tag=-5)

    def test_sendrecv_validation(self):
        Sendrecv(dest=1, send_nbytes=0, source=ANY_SOURCE)
        with pytest.raises(ValueError):
            Sendrecv(dest=1, send_nbytes=-1)
        with pytest.raises(ValueError):
            Sendrecv(dest=1, send_tag=-3)

    @pytest.mark.parametrize("op_cls", [Bcast, Reduce, Gather, Scatter, Allreduce])
    def test_collective_nbytes(self, op_cls):
        with pytest.raises(ValueError):
            op_cls(nbytes=-1)

    def test_waitsome_requires_requests(self):
        with pytest.raises(ValueError):
            Waitsome([])

    def test_waitall_normalizes(self):
        w = Waitall([1, 2, 3])  # any objects accepted at construction
        assert w.requests == (1, 2, 3)
        assert Waitall([]).requests == ()

    def test_collective_ops_tuple_complete(self):
        names = {c.__name__ for c in COLLECTIVE_OPS}
        assert names == {
            "Barrier",
            "Bcast",
            "Reduce",
            "Allreduce",
            "Gather",
            "Scatter",
            "Allgather",
            "Alltoall",
            "Scan",
            "ReduceScatter",
        }

    def test_ops_are_frozen(self):
        op = Send(dest=1)
        with pytest.raises(AttributeError):
            op.dest = 2

    def test_wait_and_test_hold_request(self):
        sentinel = object()
        assert Wait(sentinel).request is sentinel
        assert MpiTest(sentinel).request is sentinel
