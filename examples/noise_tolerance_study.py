#!/usr/bin/env python
"""Noise-tolerance study: how much OS interference can each application
absorb before significant performance degradation?

The question posed in §5: "one can execute a parallel program on a
system with a minimal, lightweight kernel ... and then explore what
amount of operating system overhead the application can tolerate before
significant performance degradation occurs."

We sweep a noise-scale ladder over several messaging patterns, fit the
sensitivity slope, and report each app's tolerance threshold (the noise
scale at which its runtime grows by more than the chosen budget).
"""

from repro.apps import (
    MasterWorkerParams,
    PipelineParams,
    StencilParams,
    TokenRingParams,
    master_worker,
    pipeline,
    stencil1d,
    token_ring,
)
from repro.core import PerturbationSpec, sweep_scales
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature
from repro.viz import render_ascii

P = 8
SCALES = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
BUDGET_FRACTION = 0.10  # "significant" = >10% runtime growth

APPS = {
    "token_ring": token_ring(TokenRingParams(traversals=5, compute_cycles=30_000.0)),
    "pipeline": pipeline(PipelineParams(items=16, stage_cycles=30_000.0)),
    "stencil1d": stencil1d(StencilParams(iterations=8, interior_cycles=30_000.0)),
    "master_worker": master_worker(MasterWorkerParams(tasks=40, base_cycles=30_000.0)),
}


def main() -> None:
    base_sig = MachineSignature(
        os_noise=Exponential(300.0), latency=Exponential(100.0), name="unit noise"
    )

    print(f"noise ladder: scales {SCALES} of (os~Exp(300), latency~Exp(100)) cycles")
    print(f"budget: {BUDGET_FRACTION:.0%} runtime growth\n")

    results = []
    for name, prog in APPS.items():
        res = run(prog, machine=None, nprocs=P, seed=2)
        runtime = res.makespan
        sweep = sweep_scales(res.trace, PerturbationSpec(base_sig, seed=0), SCALES)
        slope = sweep.slope()
        threshold = sweep.tolerance_threshold(BUDGET_FRACTION * runtime)
        results.append((name, runtime, slope, threshold, sweep))

    print(f"{'app':>14} {'runtime (cy)':>14} {'slope (cy/scale)':>17} {'tolerance':>10}")
    for name, runtime, slope, threshold, _ in results:
        tol = f"x{threshold:g}" if threshold is not None else ">max"
        print(f"{name:>14} {runtime:>14,.0f} {slope:>17,.0f} {tol:>10}")

    most_tolerant = max(results, key=lambda r: (r[3] is None, r[3] or 0))
    most_sensitive = min(results, key=lambda r: (r[3] is None, r[3] or 0))
    print(
        f"\nmost tolerant: {most_tolerant[0]}; most sensitive: {most_sensitive[0]}\n"
        "(tolerance is relative to runtime: an app with lots of slack per unit\n"
        "of communication — e.g. a serialized ring where most ranks idle —\n"
        "absorbs noise that a tightly-coupled pattern turns into delay)"
    )

    print("\nsensitivity detail for the most sensitive app:")
    print(most_sensitive[4].table())

    print("\nFig. 1-style timeline of the most sensitive app (first 4 ranks):")
    res = run(APPS[most_sensitive[0]], nprocs=P, seed=2)
    print(render_ascii(res.trace, ranks=range(4), width=90))


if __name__ == "__main__":
    main()
