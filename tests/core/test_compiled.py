"""Tests for the compiled graph plan: vectorized sampling primitives
(splitmix64 / _mix / PCG64 / ziggurat fast paths) against their scalar
references, and full cross-engine bit-identity — in-core ``propagate``
vs :class:`CompiledPlan` vs ``StreamingTraversal`` — over every bundled
app, both modes, and a ladder of seeds and scales."""

import pickle

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.core import (
    BuildConfig,
    CompiledPlan,
    PerturbationSpec,
    StreamingTraversal,
    build_graph,
    compiled_plan,
    monte_carlo,
    propagate,
    rank_influence,
    sweep_scales,
    sweep_signatures,
)
from repro.core.compiled import _build_tables, _mix_vec, _pcg_next64, _splitmix64_vec
from repro.core.perturb import _mix, _splitmix64
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature
from repro.noise.distributions import LogNormal, Normal, Scaled, Shifted, Uniform
from tests.conftest import DELAY_TOL

U64 = np.uint64


# ---------------------------------------------------------------------------
# Property tests: vectorized hashing primitives == scalar perturb internals
# ---------------------------------------------------------------------------


class TestSplitmixVectorization:
    def test_splitmix64_matches_scalar_10k(self):
        rng = np.random.default_rng(101)
        # Full uint64 range, weighted toward the >= 2^63 wraparound edge.
        xs = np.concatenate(
            [
                rng.integers(0, 1 << 64, size=5000, dtype=U64),
                rng.integers(1 << 63, 1 << 64, size=4990, dtype=U64),
                np.array([0, 1, (1 << 63) - 1, 1 << 63, (1 << 64) - 1], dtype=U64),
                np.array([0x9E3779B97F4A7C15, 0xFFFFFFFF00000000,
                          0x00000000FFFFFFFF, 0x811C9DC5, 42], dtype=U64),
            ]
        )
        vec = _splitmix64_vec(xs)
        for x, v in zip(xs.tolist(), vec.tolist()):
            assert _splitmix64(x) == v, f"splitmix64({x:#x})"

    def test_mix_matches_scalar_over_random_uid_tuples(self):
        rng = np.random.default_rng(202)
        n, width = 2000, 5
        cols = rng.integers(0, 1 << 64, size=(n, width), dtype=U64)
        lengths = rng.integers(1, width + 1, size=n)
        vec = _mix_vec(cols, lengths)
        for i in range(n):
            uid = tuple(int(v) for v in cols[i, : lengths[i]])
            assert _mix(uid) == int(vec[i]), f"_mix{uid}"

    def test_mix_negative_ints_mask_like_scalar(self):
        # perturb._mix masks v & MASK64; the plan premasks uid columns the
        # same way, so negative uid components hash identically.
        for uid in [(-1, 7), (-(1 << 63), 3), (12, -34, 56)]:
            cols = np.array([[v & ((1 << 64) - 1) for v in uid]], dtype=U64)
            assert _mix(uid) == int(_mix_vec(cols)[0])


class TestPCG64Vectorization:
    def test_raw_stream_matches_bitgenerator(self):
        rng = np.random.default_rng(303)
        n = 500
        k, s1, s2, s3 = (rng.integers(0, 1 << 64, size=n, dtype=U64) for _ in range(4))
        hi, lo = k.copy(), s1.copy()
        inc_hi = (s2 << U64(1)) | (s3 >> U64(63))
        inc_lo = (s3 << U64(1)) | U64(1)
        outs = []
        for _ in range(3):
            hi, lo, u = _pcg_next64(hi, lo, inc_hi, inc_lo)
            outs.append(u)
        bg = np.random.PCG64(0)
        template = bg.state
        for i in range(0, n, 17):
            state = dict(template)
            inc = ((((int(s2[i]) << 64) | int(s3[i])) << 1) | 1) & ((1 << 128) - 1)
            state["state"] = {"state": (int(k[i]) << 64) | int(s1[i]), "inc": inc}
            state["has_uint32"] = 0
            state["uinteger"] = 0
            bg.state = state
            raw = bg.random_raw(3)
            for j in range(3):
                assert int(raw[j]) == int(outs[j][i])

    def test_table_harvest_verifies_on_this_numpy(self):
        # The ziggurat layouts are harvested from the live Generator and
        # self-verified; on a supported numpy every family must land on
        # its fast path (this is what makes the >= 5x speedup real —
        # correctness holds regardless via the scalar fallback lanes).
        tables = _build_tables()
        assert tables["pcg"], "vectorized PCG64 failed its raw-stream self-check"
        assert tables["uniform"]
        assert tables["exp"] is not None and tables["norm"] is not None
        we, ke = tables["exp"]
        wi, ki = tables["norm"]
        assert we.shape == ke.shape == wi.shape == ki.shape == (256,)
        assert np.all(we > 0) and np.all(wi > 0)


# ---------------------------------------------------------------------------
# Cross-engine bit-identity matrix: all apps x modes x seeds x scales
# ---------------------------------------------------------------------------

SIGNATURES = {
    "const": MachineSignature(
        os_noise=Constant(100.0), latency=Constant(50.0), per_byte=Constant(0.01)
    ),
    "expo": MachineSignature(
        os_noise=Exponential(80.0), latency=Exponential(40.0), per_byte=Constant(0.005)
    ),
    "rich": MachineSignature(
        os_noise=Normal(120.0, 30.0),
        latency=Uniform(10.0, 90.0),
        per_byte=Shifted(Scaled(Exponential(0.004), 1.5), 0.001),
        os_noise_by_rank={1: Exponential(200.0)},
        latency_by_link={(0, 1): Normal(75.0, 5.0)},
    ),
    # No vectorized fast path for LogNormal: every lane goes through the
    # exact scalar fallback, which must still be bit-identical.
    "fallback": MachineSignature(
        os_noise=LogNormal(3.0, 0.5), latency=Exponential(40.0), per_byte=Constant(0.005)
    ),
    # Interval-scaled OS draws (os_quantum > 0) are scalar-fallback too.
    "quantum": MachineSignature(
        os_noise=Exponential(80.0), latency=Exponential(40.0), os_quantum=500.0
    ),
}


@pytest.fixture(scope="module")
def app_builds():
    builds = {}
    for name, (factory, params_cls) in sorted(ALL_APPS.items()):
        p = 8 if name == "butterfly_allreduce" else 4
        trace = run(factory(params_cls()), nprocs=p, seed=1).trace
        builds[name] = (trace, build_graph(trace))
    return builds


@pytest.mark.parametrize("app", sorted(ALL_APPS))
@pytest.mark.parametrize("mode", ["additive", "threshold"])
def test_cross_engine_matrix(app_builds, app, mode):
    trace, build = app_builds[app]
    plan = compiled_plan(build)
    for sig_name, sig in SIGNATURES.items():
        for seed, scale in [(0, 1.0), (7, 2.5), (123456789, -0.5)]:
            spec = PerturbationSpec(sig, seed=seed, scale=scale)
            ref = propagate(build, spec, mode=mode)
            got = plan.propagate_one(spec, mode=mode)
            ctx = f"{app}/{sig_name}/seed={seed}/scale={scale}"
            assert got.final_delay == ref.final_delay, ctx
            assert got.final_local_times == ref.final_local_times, ctx
            assert got.node_delay == ref.node_delay, ctx
            assert got.edge_delta == ref.edge_delta, ctx
            assert got.clamped_edges == ref.clamped_edges, ctx
    # Streaming stays within tolerance (one point: it is the slow engine).
    spec = PerturbationSpec(SIGNATURES["expo"], seed=7)
    ref = propagate(build, spec, mode=mode)
    streaming = StreamingTraversal(spec, mode=mode).run(trace)
    assert ref.final_delay == pytest.approx(streaming.final_delay, abs=DELAY_TOL)


def test_batch_rows_match_per_seed_propagations(app_builds):
    _, build = app_builds["token_ring"]
    plan = compiled_plan(build)
    sig = SIGNATURES["rich"]
    seeds = list(range(40, 60))
    for mode in ("additive", "threshold"):
        batch = plan.propagate_batch(
            PerturbationSpec(sig, seed=seeds[0], scale=1.5), seeds=seeds, mode=mode
        )
        assert batch.delays.shape == (len(seeds), build.graph.nprocs)
        for r, seed in enumerate(seeds):
            ref = propagate(build, PerturbationSpec(sig, seed=seed, scale=1.5), mode=mode)
            assert batch.delays[r].tolist() == ref.final_delay
            assert batch.clamped[r] == ref.clamped_edges


def test_plan_pickle_roundtrip_is_bit_identical(app_builds):
    _, build = app_builds["stencil1d"]
    plan = compiled_plan(build)
    spec = PerturbationSpec(SIGNATURES["expo"], seed=9)
    before = plan.propagate_batch(spec, seeds=[9, 10, 11], mode="additive")
    clone: CompiledPlan = pickle.loads(pickle.dumps(plan))
    after = clone.propagate_batch(spec, seeds=[9, 10, 11], mode="additive")
    assert np.array_equal(before.delays, after.delays)


def test_invalid_mode_and_engine_raise(app_builds):
    _, build = app_builds["token_ring"]
    plan = compiled_plan(build)
    spec = PerturbationSpec(SIGNATURES["const"], seed=0)
    with pytest.raises(ValueError, match="mode"):
        plan.propagate_batch(spec, mode="bogus")
    with pytest.raises(ValueError, match="engine"):
        monte_carlo(build, spec, replicates=2, engine="bogus")
    with pytest.raises(ValueError, match="engine"):
        rank_influence(build, Exponential(100.0), engine="bogus")


def test_plan_is_cached_on_build(app_builds):
    _, build = app_builds["token_ring"]
    assert compiled_plan(build) is compiled_plan(build)


# ---------------------------------------------------------------------------
# Analysis wiring: monte_carlo / sweep / influence engine equivalence
# ---------------------------------------------------------------------------


class TestAnalysisWiring:
    def test_monte_carlo_engines_and_jobs_agree(self, app_builds):
        _, build = app_builds["token_ring"]
        spec = PerturbationSpec(SIGNATURES["expo"], seed=17)
        for mode in ("additive", "threshold"):
            ref = monte_carlo(build, spec, replicates=24, mode=mode, engine="graph")
            for kwargs in ({"engine": "compiled"}, {"engine": "auto"}, {"jobs": 2}):
                got = monte_carlo(build, spec, replicates=24, mode=mode, **kwargs)
                assert np.array_equal(ref.samples, got.samples), kwargs
                assert ref.seeds == got.seeds

    def test_monte_carlo_compiled_returns_array_directly(self, app_builds):
        _, build = app_builds["token_ring"]
        dist = monte_carlo(build, PerturbationSpec(SIGNATURES["expo"]), replicates=8)
        assert isinstance(dist.samples, np.ndarray)
        assert dist.samples.dtype == np.float64
        assert dist.samples.shape == (8, build.graph.nprocs)

    def test_sweep_scales_engines_agree(self, app_builds):
        trace, _ = app_builds["stencil1d"]
        spec = PerturbationSpec(SIGNATURES["rich"], seed=5)
        scales = [0.0, 0.25, 1.0, 2.0, -1.0]
        for mode in ("additive", "threshold"):
            ref = sweep_scales(trace, spec, scales, mode=mode, engine="incore")
            for engine in ("compiled", "auto", "graph"):
                got = sweep_scales(trace, spec, scales, mode=mode, engine=engine)
                for a, b in zip(ref.points, got.points):
                    assert a.delays == b.delays, (engine, mode, a.x)

    def test_sweep_signatures_engines_agree(self, app_builds):
        trace, _ = app_builds["token_ring"]
        sigs = [SIGNATURES["expo"], SIGNATURES["const"], SIGNATURES["fallback"]]
        ref = sweep_signatures(trace, sigs, seed=3, engine="incore")
        got = sweep_signatures(trace, sigs, seed=3, engine="compiled")
        par = sweep_signatures(trace, sigs, seed=3, engine="compiled", jobs=2)
        for a, b, c in zip(ref.points, got.points, par.points):
            assert a.delays == b.delays == c.delays

    def test_sweep_rejects_unknown_engine(self, app_builds):
        trace, _ = app_builds["token_ring"]
        spec = PerturbationSpec(SIGNATURES["const"])
        with pytest.raises(ValueError, match="engine"):
            sweep_scales(trace, spec, [1.0], engine="bogus")

    def test_rank_influence_engines_agree(self, app_builds):
        _, build = app_builds["master_worker"]
        ref = rank_influence(build, Exponential(150.0), seed=3, engine="graph")
        got = rank_influence(build, Exponential(150.0), seed=3, engine="compiled")
        par = rank_influence(build, Exponential(150.0), seed=3, jobs=2)
        assert np.array_equal(ref.matrix, got.matrix)
        assert np.array_equal(ref.matrix, par.matrix)

    def test_streaming_build_config_still_respected(self, app_builds):
        # Compiled plans inherit whatever BuildConfig shaped the build.
        trace, _ = app_builds["allreduce_iter"]
        config = BuildConfig(collective_mode="butterfly")
        build = build_graph(trace, config)
        spec = PerturbationSpec(SIGNATURES["expo"], seed=2)
        ref = propagate(build, spec)
        got = compiled_plan(build).propagate_one(spec)
        assert got.final_delay == ref.final_delay


# ---------------------------------------------------------------------------
# Sampler caches: on-disk ziggurat tables, module-level classify cache
# ---------------------------------------------------------------------------


class TestTablesDiskCache:
    def test_store_and_reload_roundtrip(self, tmp_path, monkeypatch):
        from repro.core import compiled as C

        monkeypatch.setenv(C.TABLES_CACHE_ENV, str(tmp_path))
        path = C._tables_cache_path()
        assert path is not None and str(path).startswith(str(tmp_path))
        tables = _build_tables()
        C._store_tables(path, tables)
        assert path.exists()
        cand = C._load_table_candidates(path)
        assert cand is not None
        assert C._tables_match_candidates(tables, cand)
        # A harvest seeded with valid candidates must verify and adopt them.
        again = _build_tables(cand)
        for fam in ("exp", "norm"):
            assert np.array_equal(again[fam][0], tables[fam][0])
            assert np.array_equal(again[fam][1], tables[fam][1])

    def test_corrupt_or_stale_cache_never_changes_results(self, tmp_path):
        from repro.core import compiled as C

        path = tmp_path / "tables.json"
        path.write_text("{broken json")
        assert C._load_table_candidates(path) is None
        # Structurally valid but wrong values: verification must reject
        # the candidate and fall back to a fresh harvest.
        good = _build_tables()
        bad = {
            "exp": (good["exp"][0] * 1.5, good["exp"][1]),
            "norm": good["norm"],
        }
        harvested = _build_tables(bad)
        assert np.array_equal(harvested["exp"][0], good["exp"][0])
        assert np.array_equal(harvested["exp"][1], good["exp"][1])

    def test_cache_env_disables(self, monkeypatch):
        from repro.core import compiled as C

        for off in ("0", "off", "none"):
            monkeypatch.setenv(C.TABLES_CACHE_ENV, off)
            assert C._tables_cache_path() is None


class TestClassifyCache:
    def test_equal_valued_distributions_share_entries(self):
        from repro.core import compiled as C

        tables = C._get_tables()
        C._CLASSIFY_CACHE.clear()
        a = C._classify_cached(Exponential(123.0), tables)
        size = len(C._CLASSIFY_CACHE)
        b = C._classify_cached(Exponential(123.0), tables)  # distinct object
        assert len(C._CLASSIFY_CACHE) == size, "cache keyed by value, not id"
        assert a == b
        assert isinstance(a, C._VecDist) and a.family == "exp"

    def test_cache_bounded(self):
        from repro.core import compiled as C

        tables = C._get_tables()
        C._CLASSIFY_CACHE.clear()
        for i in range(C._CLASSIFY_CACHE_MAX + 10):
            C._classify_cached(Constant(float(i)), tables)
        assert len(C._CLASSIFY_CACHE) <= C._CLASSIFY_CACHE_MAX
