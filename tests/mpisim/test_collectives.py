"""Tests for the collective timing algorithms."""

import numpy as np
import pytest

from repro.mpisim.collectives import (
    binomial_children,
    binomial_parent,
    collective_exits,
    dissemination_rounds,
)
from repro.mpisim.network import NetworkModel
from repro.trace.events import EventKind

NET = NetworkModel(latency=100.0, bandwidth=1.0, send_overhead=10.0, recv_overhead=10.0)


def no_noise(rank, rng, t, duration):
    return 0.0


def exits(kind, entries, root=0, nbytes=0, noise=no_noise, net=NET):
    p = len(entries)
    rngs = [np.random.default_rng(i) for i in range(p)]
    return collective_exits(
        kind, entries, root, nbytes, net, noise, rngs, np.random.default_rng(99)
    )


class TestTreeHelpers:
    def test_dissemination_rounds(self):
        assert dissemination_rounds(1) == 0
        assert dissemination_rounds(2) == 1
        assert dissemination_rounds(5) == 3
        assert dissemination_rounds(8) == 3
        assert dissemination_rounds(9) == 4

    def test_binomial_parent(self):
        assert binomial_parent(1) == 0
        assert binomial_parent(5) == 4
        assert binomial_parent(6) == 4
        assert binomial_parent(7) == 6
        with pytest.raises(ValueError):
            binomial_parent(0)

    def test_binomial_children(self):
        assert binomial_children(0, 8) == [1, 2, 4]
        assert binomial_children(4, 8) == [5, 6]
        assert binomial_children(0, 5) == [1, 2, 4]
        assert binomial_children(3, 8) == []

    def test_tree_consistency(self):
        """Every non-root has exactly one parent listing it as a child."""
        p = 13
        for v in range(1, p):
            parent = binomial_parent(v)
            assert v in binomial_children(parent, p)


COLLECTIVE_KINDS = [
    EventKind.BARRIER,
    EventKind.ALLREDUCE,
    EventKind.ALLGATHER,
    EventKind.ALLTOALL,
    EventKind.BCAST,
    EventKind.REDUCE,
    EventKind.GATHER,
    EventKind.SCATTER,
]


class TestExitInvariants:
    @pytest.mark.parametrize("kind", COLLECTIVE_KINDS)
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_exits_after_entries(self, kind, p):
        entries = [100.0 * (r + 1) for r in range(p)]
        ex = exits(kind, entries, root=0, nbytes=64)
        assert len(ex) == p
        for r in range(p):
            assert ex[r] >= entries[r]

    @pytest.mark.parametrize("kind", [EventKind.BARRIER, EventKind.ALLREDUCE])
    def test_synchronizing_exits_after_last_entry(self, kind):
        """Every rank of a synchronizing collective must wait for the
        slowest entrant (dissemination connects all ranks)."""
        entries = [0.0, 0.0, 50_000.0, 0.0]
        ex = exits(kind, entries)
        assert all(t >= 50_000.0 for t in ex)

    def test_bcast_leaf_can_exit_before_stragglers(self):
        """Non-synchronizing semantics: a bcast subtree fed early does
        not wait for an unrelated late rank."""
        entries = [0.0] * 8
        entries[7] = 10**7  # late leaf (child of 4 only? rank 7 virtual=7)
        ex = exits(EventKind.BCAST, entries, root=0, nbytes=8)
        # rank 1 (direct child of root) exits long before 10^7.
        assert ex[1] < 10**6

    def test_barrier_with_one_rank(self):
        ex = exits(EventKind.BARRIER, [42.0])
        assert len(ex) == 1
        assert ex[0] >= 42.0


class TestTimingStructure:
    def test_barrier_two_ranks_exact(self):
        # One dissemination round: send (10) + wire (100) + recv (10).
        ex = exits(EventKind.BARRIER, [0.0, 0.0])
        assert ex == [pytest.approx(120.0), pytest.approx(120.0)]

    def test_allreduce_payload_slows(self):
        fast = exits(EventKind.ALLREDUCE, [0.0] * 4, nbytes=0)
        slow = exits(EventKind.ALLREDUCE, [0.0] * 4, nbytes=10_000)
        assert max(slow) > max(fast)

    def test_bcast_root_matters(self):
        entries = [0.0, 0.0, 0.0, 10_000.0]
        late_root = exits(EventKind.BCAST, entries, root=3, nbytes=8)
        early_root = exits(EventKind.BCAST, entries, root=0, nbytes=8)
        # With the late rank as root, everyone waits for it.
        assert min(late_root) >= 10_000.0
        assert min(early_root) < 10_000.0

    def test_reduce_root_receives_all(self):
        entries = [0.0, 0.0, 0.0, 77_777.0]
        ex = exits(EventKind.REDUCE, entries, root=0, nbytes=8)
        assert ex[0] >= 77_777.0  # root cannot finish before slowest child

    def test_log_rounds_scaling(self):
        """Barrier cost grows logarithmically: doubling p adds one round."""
        cost = {}
        for p in (2, 4, 8, 16):
            ex = exits(EventKind.BARRIER, [0.0] * p)
            cost[p] = max(ex)
        round_cost = cost[2]
        assert cost[4] == pytest.approx(2 * round_cost)
        assert cost[8] == pytest.approx(3 * round_cost)
        assert cost[16] == pytest.approx(4 * round_cost)

    def test_noise_delays_everyone_in_barrier(self):
        def noisy_rank2(rank, rng, t, duration):
            return 5_000.0 if rank == 2 else 0.0

        ex = exits(EventKind.BARRIER, [0.0] * 4, noise=noisy_rank2)
        baseline = exits(EventKind.BARRIER, [0.0] * 4)
        # §3.2: one noisy rank perturbs all ranks' exits.
        assert all(n > b for n, b in zip(ex, baseline))

    def test_gather_payload_grows_up_tree(self):
        small = exits(EventKind.GATHER, [0.0] * 8, root=0, nbytes=10)
        big = exits(EventKind.GATHER, [0.0] * 8, root=0, nbytes=10_000)
        assert big[0] > small[0]

    def test_rejects_non_collective(self):
        with pytest.raises(ValueError):
            exits(EventKind.SEND, [0.0, 0.0])
