"""Error paths of the streaming traversal on malformed traces.

The engine must fail loudly and diagnosably — never hang or silently
produce wrong delays — when handed traces that do not describe a
complete run (§4.3's precondition).
"""

import pytest

from repro.core import PerturbationSpec, StreamingTraversal
from repro.core.matching import MatchError
from repro.noise import Constant, MachineSignature
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace


def ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


def wrap(rank, inner):
    events = [ev(rank, 0, EventKind.INIT, 0.0, 1.0)]
    t = 1.0
    for kind, kw in inner:
        events.append(ev(rank, len(events), kind, t + 1, t + 2, **kw))
        t += 2
    events.append(ev(rank, len(events), EventKind.FINALIZE, t + 1, t + 2))
    return events


SPEC = PerturbationSpec(MachineSignature(os_noise=Constant(10.0)), seed=0)


class TestStalls:
    def test_missing_sender(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.RECV, dict(peer=1, tag=0))]),
                wrap(1, []),
            ]
        )
        with pytest.raises(MatchError, match="stalled"):
            StreamingTraversal(SPEC).run(traces)

    def test_missing_collective_participant(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.BARRIER, dict(coll_seq=0))]),
                wrap(1, []),
            ]
        )
        with pytest.raises(MatchError, match="stalled"):
            StreamingTraversal(SPEC).run(traces)

    def test_stall_message_names_blockers(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.RECV, dict(peer=1, tag=7))]),
                wrap(1, []),
            ]
        )
        with pytest.raises(MatchError) as exc:
            StreamingTraversal(SPEC).run(traces)
        assert "rank 0" in str(exc.value)
        assert "data" in str(exc.value)


class TestHardErrors:
    def test_unknown_request_completion(self):
        traces = MemoryTrace(
            [wrap(0, [(EventKind.WAIT, dict(reqs=(9,), completed=(9,)))])]
        )
        with pytest.raises(MatchError, match="unknown request"):
            StreamingTraversal(SPEC).run(traces)

    def test_collective_kind_mismatch(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.BARRIER, dict(coll_seq=0))]),
                wrap(1, [(EventKind.ALLREDUCE, dict(coll_seq=0, nbytes=8))]),
            ]
        )
        with pytest.raises(MatchError, match="inconsistent"):
            StreamingTraversal(SPEC).run(traces)

    def test_collective_root_mismatch(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.BCAST, dict(coll_seq=0, root=0, nbytes=8))]),
                wrap(1, [(EventKind.BCAST, dict(coll_seq=0, root=1, nbytes=8))]),
            ]
        )
        with pytest.raises(MatchError, match="inconsistent"):
            StreamingTraversal(SPEC).run(traces)


class TestWarnings:
    def test_uncompleted_request_warned_not_fatal(self):
        traces = MemoryTrace(
            [
                wrap(0, [(EventKind.ISEND, dict(peer=1, tag=0, nbytes=8, req=0))]),
                wrap(1, [(EventKind.RECV, dict(peer=0, tag=0, nbytes=8))]),
            ]
        )
        res = StreamingTraversal(SPEC).run(traces)
        assert any("never completed" in w for w in res.warnings)
        assert len(res.final_delay) == 2
