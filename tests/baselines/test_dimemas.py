"""Tests for the Dimemas-style replay baseline (§1.1)."""

import pytest

from repro.apps import (
    AllreduceIterParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    stencil1d,
    token_ring,
)
from repro.baselines import ReplayParams, replay
from repro.core.matching import MatchError
from repro.mpisim import (
    Compute,
    Irecv,
    Isend,
    Machine,
    NetworkModel,
    Recv,
    Send,
    Sendrecv,
    Waitall,
    run,
)
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace

NET = NetworkModel(
    latency=1000.0, bandwidth=2.0, send_overhead=200.0, recv_overhead=200.0, eager_threshold=8192
)
SAME = ReplayParams(
    latency=1000.0, bandwidth=2.0, send_overhead=200.0, recv_overhead=200.0, eager_threshold=8192
)


def machine(p):
    return Machine(nprocs=p, network=NET)


APPS = [
    ("token_ring", token_ring(TokenRingParams(traversals=3)), 6),
    ("stencil", stencil1d(StencilParams(iterations=4)), 5),
    ("allreduce_iter", allreduce_iter(AllreduceIterParams(iterations=4)), 6),
]


class TestIdentityReplay:
    """Replaying under the generating machine's parameters must
    reproduce the original timing exactly — the replay semantics mirror
    the engine's protocol rules."""

    @pytest.mark.parametrize("name,prog,p", APPS, ids=[a[0] for a in APPS])
    def test_identity(self, name, prog, p):
        res = run(prog, machine=machine(p), seed=0)
        rp = replay(res.trace, SAME)
        assert rp.makespan == pytest.approx(rp.original_makespan, rel=1e-9)
        for a, b in zip(rp.finish_times, rp.original_finish_times):
            assert a == pytest.approx(b, rel=1e-9)

    def test_identity_with_sendrecv(self):
        def prog(me):
            for _ in range(3):
                yield Compute(2_000.0)
                yield Sendrecv(
                    dest=(me.rank + 1) % me.size, send_nbytes=64, source=(me.rank - 1) % me.size
                )

        res = run(prog, machine=machine(4), seed=0)
        rp = replay(res.trace, SAME)
        assert rp.makespan == pytest.approx(rp.original_makespan, rel=1e-9)

    def test_identity_rendezvous(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=50_000)  # above threshold
            else:
                yield Compute(5_000.0)
                yield Recv(source=0)

        res = run(prog, machine=machine(2), seed=0)
        rp = replay(res.trace, SAME)
        assert rp.makespan == pytest.approx(rp.original_makespan, rel=1e-9)

    def test_identity_nonblocking(self):
        def prog(me):
            p = me.size
            left, right = (me.rank - 1) % p, (me.rank + 1) % p
            for _ in range(3):
                r1 = yield Irecv(source=left, tag=1)
                s1 = yield Isend(dest=right, nbytes=20_000, tag=1)  # rendezvous
                yield Compute(3_000.0)
                yield Waitall([r1, s1])

        res = run(prog, machine=machine(4), seed=0)
        rp = replay(res.trace, SAME)
        assert rp.makespan == pytest.approx(rp.original_makespan, rel=1e-9)


class TestWhatIf:
    @pytest.fixture(scope="class")
    def ring_trace(self):
        return run(token_ring(TokenRingParams(traversals=3)), machine=machine(6), seed=0).trace

    def test_faster_network_speeds_up(self, ring_trace):
        fast = replay(
            ring_trace,
            ReplayParams(latency=100.0, bandwidth=20.0, send_overhead=50.0, recv_overhead=50.0),
        )
        assert fast.makespan < fast.original_makespan
        assert fast.speedup > 1.0

    def test_slower_network_slows_down(self, ring_trace):
        slow = replay(ring_trace, ReplayParams(latency=50_000.0, bandwidth=0.1))
        assert slow.makespan > slow.original_makespan

    def test_cpu_factor_scales_compute(self, ring_trace):
        base = replay(ring_trace, SAME)
        doubled = replay(
            ring_trace,
            ReplayParams(
                latency=1000.0,
                bandwidth=2.0,
                send_overhead=200.0,
                recv_overhead=200.0,
                eager_threshold=8192,
                cpu_factor=2.0,
            ),
        )
        # Compute dominates the ring: makespan roughly doubles, and it must
        # grow by at least the serialized compute total.
        assert doubled.makespan > 1.5 * base.makespan

    def test_latency_sensitivity_is_linear_in_messages(self, ring_trace):
        a = replay(ring_trace, ReplayParams(latency=1000.0, bandwidth=2.0))
        b = replay(ring_trace, ReplayParams(latency=2000.0, bandwidth=2.0))
        # 6 ranks x 3 traversals hops on the critical chain + final hop.
        per_hop = (b.makespan - a.makespan) / 1000.0
        assert per_hop == pytest.approx(19, abs=1.0)

    def test_deterministic(self, ring_trace):
        a = replay(ring_trace, SAME)
        b = replay(ring_trace, SAME)
        assert a.finish_times == b.finish_times


class TestValidation:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            ReplayParams(latency=-1.0)
        with pytest.raises(ValueError):
            ReplayParams(bandwidth=0.0)
        with pytest.raises(ValueError):
            ReplayParams(cpu_factor=0.0)

    def test_incomplete_trace_stalls(self):
        r0 = [
            EventRecord(rank=0, seq=0, kind=EventKind.INIT, t_start=0.0, t_end=1.0),
            EventRecord(
                rank=0, seq=1, kind=EventKind.RECV, t_start=2.0, t_end=3.0, peer=1, tag=0
            ),
        ]
        r1 = [EventRecord(rank=1, seq=0, kind=EventKind.INIT, t_start=0.0, t_end=1.0)]
        with pytest.raises(MatchError, match="stalled"):
            replay(MemoryTrace([r0, r1]), SAME)
