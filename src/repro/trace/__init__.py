"""Trace substrate: event model, codecs, buffered writers, streaming readers.

Implements the paper's §4 tracing layer (minus the C/PMPI part, which is
replaced by :mod:`repro.mpisim.tracing` — see DESIGN.md §2).
"""

from repro.trace.events import (
    COLLECTIVE_KINDS,
    COMPLETION_KINDS,
    EventKind,
    EventRecord,
    LOCAL_KINDS,
    NONBLOCKING_KINDS,
    PAIRWISE_KINDS,
    ROOTED_COLLECTIVES,
    TraceMeta,
)
from repro.trace.reader import MemoryTrace, RankStream, TraceReader, TraceSet, find_trace_files
from repro.trace.validate import ValidationIssue, ValidationReport, validate_traces
from repro.trace.writer import TraceSetWriter, TraceWriter, rank_filename

__all__ = [
    "COLLECTIVE_KINDS",
    "COMPLETION_KINDS",
    "EventKind",
    "EventRecord",
    "LOCAL_KINDS",
    "NONBLOCKING_KINDS",
    "PAIRWISE_KINDS",
    "ROOTED_COLLECTIVES",
    "TraceMeta",
    "MemoryTrace",
    "RankStream",
    "TraceReader",
    "TraceSet",
    "find_trace_files",
    "ValidationIssue",
    "ValidationReport",
    "validate_traces",
    "TraceSetWriter",
    "TraceWriter",
    "rank_filename",
]
